// Minimal open-addressing hash table for the index hot path: power-of-two
// capacity in a single contiguous slot array, Fibonacci multiplicative
// hashing, linear probing. The table is sized once for an exact key count
// (load factor <= 0.5, so probes terminate and stay short) and never grows
// or deletes — HashRangeIndex knows its entry counts up front. A lookup is
// one multiply, one shift and a forward scan that stays within one or two
// cache lines, replacing the node chase of std::unordered_map.
#ifndef KGOA_INDEX_FLAT_TABLE_H_
#define KGOA_INDEX_FLAT_TABLE_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/contract.h"

// Probe-chain bound contract: with power-of-two capacity and load factor
// <= 0.5 every probe chain terminates within `capacity` steps, so a chain
// that exceeds it can only mean slot-array corruption. Zero cost unless
// the KGOA_DCHECK level is active.
#if KGOA_CONTRACTS_ENABLED
#define KGOA_PROBE_GUARD(name) std::size_t name = 0
#define KGOA_PROBE_STEP(name) KGOA_DCHECK_LE(++(name), slots_.size())
#else
#define KGOA_PROBE_GUARD(name) \
  do {                         \
  } while (0)
#define KGOA_PROBE_STEP(name) \
  do {                        \
  } while (0)
#endif

namespace kgoa {

// Key is an unsigned integer type; `empty_key` must never be inserted.
template <typename Key, typename Value>
class FlatTable {
 public:
  explicit FlatTable(Key empty_key) : empty_key_(empty_key) {
    slots_.assign(2, Slot{empty_key_, Value{}});  // Find is safe pre-Reset
  }

  FlatTable(const FlatTable&) = delete;
  FlatTable& operator=(const FlatTable&) = delete;
  FlatTable(FlatTable&&) = default;
  FlatTable& operator=(FlatTable&&) = default;

  // Clears the table and sizes it for exactly `expected` InsertUnique
  // calls: capacity is the smallest power of two >= 2 * expected.
  void Reset(std::size_t expected) {
    std::size_t capacity = 2;
    while (capacity < expected * 2) capacity <<= 1;
    shift_ = 64 - std::countr_zero(capacity);
    size_ = 0;
    slots_.assign(capacity, Slot{empty_key_, Value{}});
  }

  // Empties the table, keeping the current capacity.
  void Clear() {
    size_ = 0;
    std::fill(slots_.begin(), slots_.end(), Slot{empty_key_, Value{}});
  }

  // Inserts `key` (which must not be present) and returns its value slot.
  // The caller sized the table via Reset; capacity never grows here, so
  // the load-factor contract is what keeps probe chains bounded.
  Value& InsertUnique(Key key) {
    KGOA_DCHECK_NE(key, empty_key_);
    KGOA_DCHECK_LT(size_ * 2, slots_.size());  // load factor <= 0.5
    ++size_;
    KGOA_PROBE_GUARD(probes);
    for (std::size_t i = Bucket(key);; i = (i + 1) & (slots_.size() - 1)) {
      KGOA_PROBE_STEP(probes);
      Slot& slot = slots_[i];
      if (slot.key == empty_key_) {
        slot.key = key;
        return slot.value;
      }
      KGOA_DCHECK_NE(slot.key, key);
    }
  }

  // Returns the value for `key`, inserting a default-constructed one if
  // absent (growing to keep the load factor <= 0.5). For dynamically
  // sized memo tables (CTJ suffix caches) where the key population is
  // not known up front.
  Value& FindOrInsert(Key key, bool* inserted) {
    KGOA_DCHECK_NE(key, empty_key_);
    KGOA_PROBE_GUARD(probes);
    for (std::size_t i = Bucket(key);; i = (i + 1) & (slots_.size() - 1)) {
      KGOA_PROBE_STEP(probes);
      Slot& slot = slots_[i];
      if (slot.key == key) {
        *inserted = false;
        return slot.value;
      }
      if (slot.key == empty_key_) {
        *inserted = true;
        if ((size_ + 1) * 2 > slots_.size()) {
          Grow();
          return FindOrInsert(key, inserted);  // slot moved; re-probe
        }
        ++size_;
        slot.key = key;
        return slot.value;
      }
    }
  }

  // Returns the value for `key`, or nullptr if absent.
  const Value* Find(Key key) const {
    KGOA_PROBE_GUARD(probes);
    for (std::size_t i = Bucket(key);; i = (i + 1) & (slots_.size() - 1)) {
      KGOA_PROBE_STEP(probes);
      const Slot& slot = slots_[i];
      if (slot.key == key) return &slot.value;
      if (slot.key == empty_key_) return nullptr;
    }
  }

  std::size_t size() const { return size_; }

  uint64_t MemoryBytes() const {
    return static_cast<uint64_t>(slots_.size()) * sizeof(Slot);
  }

 private:
  struct Slot {
    Key key;
    Value value;
  };

  std::size_t Bucket(Key key) const {
    return static_cast<std::size_t>(
        (static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull) >> shift_);
  }

  // Doubles capacity and rehashes every resident entry. Only reached from
  // FindOrInsert; Reset-sized tables never grow.
  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    const std::size_t capacity = old.size() * 2;
    shift_ = 64 - std::countr_zero(capacity);
    slots_.assign(capacity, Slot{empty_key_, Value{}});
    const std::size_t resident = size_;
    size_ = 0;
    for (Slot& slot : old) {
      if (slot.key == empty_key_) continue;
      InsertUnique(slot.key) = slot.value;
    }
    KGOA_DCHECK_EQ(size_, resident);  // rehash must not lose or dup keys
  }

  Key empty_key_;
  int shift_ = 63;
  std::size_t size_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace kgoa

#endif  // KGOA_INDEX_FLAT_TABLE_H_
