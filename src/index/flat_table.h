// Minimal open-addressing hash table for the index hot path: power-of-two
// capacity in a single contiguous slot array, Fibonacci multiplicative
// hashing, linear probing. The table is sized once for an exact key count
// (load factor <= 0.5, so probes terminate and stay short) and never grows
// or deletes — HashRangeIndex knows its entry counts up front. A lookup is
// one multiply, one shift and a forward scan that stays within one or two
// cache lines, replacing the node chase of std::unordered_map.
#ifndef KGOA_INDEX_FLAT_TABLE_H_
#define KGOA_INDEX_FLAT_TABLE_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/contract.h"

// Probe-chain bound contract: with power-of-two capacity and load factor
// <= 0.5 every probe chain terminates within `capacity` steps, so a chain
// that exceeds it can only mean slot-array corruption. Zero cost unless
// the KGOA_DCHECK level is active.
#if KGOA_CONTRACTS_ENABLED
#define KGOA_PROBE_GUARD(name) std::size_t name = 0
#define KGOA_PROBE_STEP(name) KGOA_DCHECK_LE(++(name), slots_.size())
#else
#define KGOA_PROBE_GUARD(name) \
  do {                         \
  } while (0)
#define KGOA_PROBE_STEP(name) \
  do {                        \
  } while (0)
#endif

namespace kgoa {

// Key is an unsigned integer type; `empty_key` must never be inserted.
template <typename Key, typename Value>
class FlatTable {
 public:
  explicit FlatTable(Key empty_key) : empty_key_(empty_key) {
    slots_.assign(2, Slot{empty_key_, Value{}});  // Find is safe pre-Reset
  }

  FlatTable(const FlatTable&) = delete;
  FlatTable& operator=(const FlatTable&) = delete;
  FlatTable(FlatTable&&) = default;
  FlatTable& operator=(FlatTable&&) = default;

  // Clears the table and sizes it for exactly `expected` InsertUnique
  // calls: capacity is the smallest power of two >= 2 * expected.
  void Reset(std::size_t expected) {
    std::size_t capacity = 2;
    while (capacity < expected * 2) capacity <<= 1;
    shift_ = 64 - std::countr_zero(capacity);
    size_ = 0;
    slots_.assign(capacity, Slot{empty_key_, Value{}});
  }

  // Empties the table, keeping the current capacity.
  void Clear() {
    size_ = 0;
    std::fill(slots_.begin(), slots_.end(), Slot{empty_key_, Value{}});
  }

  // Inserts `key` (which must not be present) and returns its value slot.
  // The caller sized the table via Reset; capacity never grows here, so
  // the load-factor contract is what keeps probe chains bounded.
  Value& InsertUnique(Key key) {
    KGOA_DCHECK_NE(key, empty_key_);
    KGOA_DCHECK_LT(size_ * 2, slots_.size());  // load factor <= 0.5
    ++size_;
    KGOA_PROBE_GUARD(probes);
    for (std::size_t i = Bucket(key);; i = (i + 1) & (slots_.size() - 1)) {
      KGOA_PROBE_STEP(probes);
      Slot& slot = slots_[i];
      if (slot.key == empty_key_) {
        slot.key = key;
        return slot.value;
      }
      KGOA_DCHECK_NE(slot.key, key);
    }
  }

  // Returns the value for `key`, inserting a default-constructed one if
  // absent (growing to keep the load factor <= 0.5). For dynamically
  // sized memo tables (CTJ suffix caches) where the key population is
  // not known up front.
  Value& FindOrInsert(Key key, bool* inserted) {
    KGOA_DCHECK_NE(key, empty_key_);
    KGOA_PROBE_GUARD(probes);
    for (std::size_t i = Bucket(key);; i = (i + 1) & (slots_.size() - 1)) {
      KGOA_PROBE_STEP(probes);
      Slot& slot = slots_[i];
      if (slot.key == key) {
        *inserted = false;
        return slot.value;
      }
      if (slot.key == empty_key_) {
        *inserted = true;
        if ((size_ + 1) * 2 > slots_.size()) {
          Grow();
          return FindOrInsert(key, inserted);  // slot moved; re-probe
        }
        ++size_;
        slot.key = key;
        return slot.value;
      }
    }
  }

  // Hints the home cache line for `key` into L1 ahead of a Find. Batched
  // probe kernels (kernels::ProbeBatch) issue a window of these before
  // consuming the corresponding Finds in order, hiding the random-access
  // load latency behind the rest of the batch.
  void Prefetch(Key key) const {
    __builtin_prefetch(slots_.data() + Bucket(key), /*rw=*/0, /*locality=*/1);
  }

  // Returns the value for `key`, or nullptr if absent.
  const Value* Find(Key key) const {
    KGOA_PROBE_GUARD(probes);
    for (std::size_t i = Bucket(key);; i = (i + 1) & (slots_.size() - 1)) {
      KGOA_PROBE_STEP(probes);
      const Slot& slot = slots_[i];
      if (slot.key == key) return &slot.value;
      if (slot.key == empty_key_) return nullptr;
    }
  }

  std::size_t size() const { return size_; }

  uint64_t MemoryBytes() const {
    return static_cast<uint64_t>(slots_.size()) * sizeof(Slot);
  }

 private:
  struct Slot {
    Key key;
    Value value;
  };

  std::size_t Bucket(Key key) const {
    return static_cast<std::size_t>(
        (static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull) >> shift_);
  }

  // Doubles capacity and rehashes every resident entry. Only reached from
  // FindOrInsert; Reset-sized tables never grow.
  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    const std::size_t capacity = old.size() * 2;
    shift_ = 64 - std::countr_zero(capacity);
    slots_.assign(capacity, Slot{empty_key_, Value{}});
    const std::size_t resident = size_;
    size_ = 0;
    for (Slot& slot : old) {
      if (slot.key == empty_key_) continue;
      InsertUnique(slot.key) = slot.value;
    }
    KGOA_DCHECK_EQ(size_, resident);  // rehash must not lose or dup keys
  }

  Key empty_key_;
  int shift_ = 63;
  std::size_t size_ = 0;
  std::vector<Slot> slots_;
};

// Flat accumulation map: open-addressing index over a dense, insertion-
// ordered item array. Built for hot accumulator loops (per-group walk
// contributions, per-pair audit masses) that FlatTable cannot serve
// because they need (a) no reserved sentinel key — kInvalidTerm is a
// legitimate group key on the audit path — and (b) deterministic
// iteration for ordered merges. A slot stores `item index + 1` (0 =
// empty), so clearing is O(live entries), not O(capacity), and copying
// the whole structure (snapshot publication) is two vector copies.
template <typename Key, typename Value>
class FlatAccumulator {
 public:
  struct Item {
    Key key;
    uint32_t slot;  // home slot in slots_, kept in sync across Grow
    Value value;
  };

  FlatAccumulator() { slots_.assign(8, 0); }

  // Returns the value for `key`, default-constructing it if absent. The
  // reference is invalidated by the next FindOrAdd (dense array growth).
  Value& FindOrAdd(Key key) {
    KGOA_PROBE_GUARD(probes);
    for (std::size_t i = Bucket(key);; i = (i + 1) & (slots_.size() - 1)) {
      KGOA_PROBE_STEP(probes);
      const uint32_t slot = slots_[i];
      if (slot == 0) {
        if ((items_.size() + 1) * 2 > slots_.size()) {
          Grow();
          return FindOrAdd(key);  // slot moved; re-probe
        }
        KGOA_DCHECK_LT(items_.size(), UINT32_MAX);
        slots_[i] = static_cast<uint32_t>(items_.size()) + 1;
        items_.push_back(Item{key, static_cast<uint32_t>(i), Value{}});
        return items_.back().value;
      }
      if (items_[slot - 1].key == key) return items_[slot - 1].value;
    }
  }

  const Value* Find(Key key) const {
    KGOA_PROBE_GUARD(probes);
    for (std::size_t i = Bucket(key);; i = (i + 1) & (slots_.size() - 1)) {
      KGOA_PROBE_STEP(probes);
      const uint32_t slot = slots_[i];
      if (slot == 0) return nullptr;
      if (items_[slot - 1].key == key) return &items_[slot - 1].value;
    }
  }

  bool Contains(Key key) const { return Find(key) != nullptr; }

  // Entries in insertion order — deterministic, which is what keeps
  // merges and FP summations bit-stable across runs.
  const std::vector<Item>& items() const { return items_; }

  // In-place update while iterating items() by index (the slot index is
  // not exposed, so the table invariants cannot be broken this way).
  Value& ValueAt(std::size_t index) { return items_[index].value; }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  // O(live entries): only the slots the items occupy are reset.
  void Clear() {
    for (const Item& item : items_) slots_[item.slot] = 0;
    items_.clear();
  }

  uint64_t MemoryBytes() const {
    return static_cast<uint64_t>(slots_.size()) * sizeof(uint32_t) +
           static_cast<uint64_t>(items_.capacity()) * sizeof(Item);
  }

 private:
  std::size_t Bucket(Key key) const {
    const int shift = 64 - std::countr_zero(slots_.size());
    return static_cast<std::size_t>(
        (static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull) >> shift);
  }

  // Doubles the slot index and re-homes every item (items_ is untouched,
  // so iteration order and value references by index survive).
  void Grow() {
    slots_.assign(slots_.size() * 2, 0);
    for (std::size_t k = 0; k < items_.size(); ++k) {
      std::size_t i = Bucket(items_[k].key);
      KGOA_PROBE_GUARD(probes);
      while (slots_[i] != 0) {
        KGOA_PROBE_STEP(probes);
        i = (i + 1) & (slots_.size() - 1);
      }
      slots_[i] = static_cast<uint32_t>(k) + 1;
      items_[k].slot = static_cast<uint32_t>(i);
    }
  }

  std::vector<uint32_t> slots_;  // item index + 1; 0 = empty
  std::vector<Item> items_;      // dense, insertion order
};

}  // namespace kgoa

#endif  // KGOA_INDEX_FLAT_TABLE_H_
