// Sorted-array trie index over the triples of a graph, for one component
// order. This is the paper's index representation for CTJ and Audit Join
// (section V-A): a flat std::vector sorted lexicographically, where each
// trie "node" is a contiguous range. On top of the sorted array the index
// keeps a CSR-style level-0 offset array (one slot per dictionary term),
// so level-0 Narrow/BlockEnd and the distinct level-0 count are O(1);
// deeper levels use galloping seeks that cost O(log d) for a hop of
// distance d instead of O(log |range|).
//
// The index has two storage tiers behind the same position-space
// contract. The raw tier keeps the sorted Triple array itself. The block
// tier (CompressToBlockTier) re-stores each level as an independently
// compressed BlockedColumn of 128-entry blocks (frame-of-reference
// bit-packing or zigzag varint-delta, chosen per block) and frees the
// raw array; Narrow/SeekGE/BlockEnd then run on the block directory
// (block-max skipping in place of galloping) and return the exact same
// positions, so every engine above — and the estimates they produce —
// is bit-identical across tiers.
#ifndef KGOA_INDEX_TRIE_INDEX_H_
#define KGOA_INDEX_TRIE_INDEX_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/index/block_codec.h"
#include "src/index/order.h"
#include "src/rdf/types.h"
#include "src/util/contract.h"

namespace kgoa {

// Half-open range of positions in the sorted triple array.
struct Range {
  uint32_t begin = 0;
  uint32_t end = 0;

  uint32_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }

  friend bool operator==(const Range&, const Range&) = default;
};

// Which physical representation backs the sorted position space.
enum class StorageTier : uint8_t { kRaw = 0, kBlock = 1 };

inline constexpr const char* StorageTierName(StorageTier tier) {
  return tier == StorageTier::kRaw ? "raw" : "block";
}

class OrderDelta;

class TrieIndex {
 public:
  // Copies and radix-sorts `triples` under `order`. Input may be in any
  // order but must be duplicate-free (Graph guarantees this).
  TrieIndex(IndexOrder order, const std::vector<Triple>& triples);

  // Adopts `sorted`, which must already be sorted under `order`, and
  // builds the level-0 offsets. `num_terms` must exceed every TermId in
  // `sorted` (the dictionary size). O(n + num_terms); used by IndexSet's
  // chained radix build, which derives each order with one counting pass.
  TrieIndex(IndexOrder order, std::vector<Triple> sorted, uint32_t num_terms);

  // Overlay VIEW: merges `base` with `delta` (adds + tombstones) into the
  // rank-defined merged position space of DESIGN.md §13, without copying
  // any base storage. Every accessor answers as a from-scratch rebuild of
  // the merged triple set would, position for position; seeks and narrows
  // become O(log n * log overlay) generic binary searches over the merged
  // key sequence. `base` and `delta` must outlive the view (GraphVersion
  // pins both). `num_terms` must exceed every TermId of the merged set.
  TrieIndex(const TrieIndex& base, const OrderDelta& delta,
            uint32_t num_terms);

  TrieIndex(const TrieIndex&) = delete;
  TrieIndex& operator=(const TrieIndex&) = delete;
  TrieIndex(TrieIndex&&) = default;

  IndexOrder order() const { return order_; }
  StorageTier tier() const { return tier_; }
  uint32_t size() const { return size_; }
  Range Root() const { return Range{0, size()}; }

  // True for an overlay view (no owned storage; reads merge base + delta).
  bool is_view() const { return base_ != nullptr; }

  // Re-stores the three level columns as compressed BlockedColumns and
  // frees the raw triple array. Positions, ranges and every query result
  // are unchanged; only the physical bytes (and MemoryBytes) move.
  void CompressToBlockTier();

  // The triple at `pos` (by value: the block tier reassembles it from the
  // three level columns; views resolve the merged position to its source).
  Triple TripleAt(uint32_t pos) const {
    if (base_ != nullptr) return ViewTripleAt(pos);
    if (tier_ == StorageTier::kRaw) return triples_[pos];
    TermId c[3];
    c[OrderComponent(order_, 0)] = cols_[0].Get(pos);
    c[OrderComponent(order_, 1)] = cols_[1].Get(pos);
    c[OrderComponent(order_, 2)] = cols_[2].Get(pos);
    return Triple{c[0], c[1], c[2]};
  }

  // Hints the memory TripleAt(pos) will touch: the raw triple itself, or
  // each level column's encoded block bytes on the block tier. Issued by
  // batched walk loops ahead of the corresponding TripleAt. Views decline
  // the hint: resolving the merged position costs more than the fetch it
  // would hide.
  void PrefetchTriple(uint32_t pos) const {
    if (base_ != nullptr) return;
    if (tier_ == StorageTier::kRaw) {
      __builtin_prefetch(triples_.data() + pos, /*rw=*/0, /*locality=*/1);
      return;
    }
    for (const BlockedColumn& col : cols_) col.PrefetchBlock(pos);
  }

  // The raw sorted array, for IndexSet's chained radix derivation only
  // (each order is one counting pass from another). Raw tier only —
  // everything else must go through the tier-agnostic accessors above
  // (enforced by the kgoa_lint raw-level-array rule).
  const Triple* RawTriplesForDerive() const {
    KGOA_DCHECK(tier_ == StorageTier::kRaw);
    KGOA_DCHECK(base_ == nullptr);
    return triples_.data();
  }

  // Value stored at trie `level` for the triple at `pos`.
  TermId KeyAt(uint32_t pos, int level) const {
    if (base_ != nullptr) return ViewKeyAt(pos, level);
    if (tier_ == StorageTier::kRaw) {
      return triples_[pos][OrderComponent(order_, level)];
    }
    return cols_[level].Get(pos);
  }

  // Range of triples whose level-0 value is `value` (empty if absent).
  // O(1) via the CSR offsets; O(log overlay) for views.
  Range Level0Range(TermId value) const {
    if (base_ != nullptr) return ViewLevel0Range(value);
    if (value >= num_terms_) return Range{};
    return Range{offsets_[value], offsets_[value + 1]};
  }

  // Number of distinct level-0 values. O(1).
  uint64_t Ndv1() const { return ndv1_; }

  // Upper bound (exclusive) on the TermIds appearing in the triples.
  uint32_t num_terms() const { return num_terms_; }

  // Sub-range of `range` whose `level` value equals `value`. `range` must
  // be a trie node at depth `level` (root or the result of narrowing levels
  // 0..level-1). O(1) at level 0, O(log |range|) deeper.
  Range Narrow(Range range, int level, TermId value) const;

  // First position in [from, range.end) whose `level` value is >= `value`.
  // Positions before `from` are assumed already consumed (leapfrog seek);
  // the search gallops from `from` (raw tier) or skips directory blocks
  // whose max is below `value` (block tier), so a hop of distance d costs
  // O(log d) / O(d / 128) instead of O(log |range|).
  uint32_t SeekGE(Range range, int level, TermId value, uint32_t from) const;

  // End of the block of equal `level` values starting at `pos`. O(1) at
  // level 0 via the CSR offsets.
  uint32_t BlockEnd(Range range, int level, uint32_t pos) const;

  // Number of distinct `level` values in `range` (a depth-`level` node).
  // O(1) at level 0 (the root node); O(d log n) for d distinct values
  // deeper.
  uint64_t CountDistinct(Range range, int level) const;

  // Bytes resident in the raw tier (the sorted Triple array). Zero after
  // CompressToBlockTier.
  uint64_t RawStorageBytes() const {
    return static_cast<uint64_t>(triples_.size()) * sizeof(Triple);
  }

  // Bytes resident in the block tier (encoded payloads + directories).
  // Zero before CompressToBlockTier.
  uint64_t BlockStorageBytes() const {
    uint64_t bytes = 0;
    for (const BlockedColumn& col : cols_) bytes += col.MemoryBytes();
    return bytes;
  }

  // Resident bytes: the active tier's storage plus the CSR offset array.
  uint64_t MemoryBytes() const {
    return RawStorageBytes() + BlockStorageBytes() +
           static_cast<uint64_t>(offsets_.size()) * sizeof(uint32_t);
  }

  // Full structural validation at KGOA_CHECK strength (active in every
  // build mode): lexicographic sortedness under the order, TermIds inside
  // the dictionary bound, CSR offset monotonicity and closure, the
  // distinct level-0 count, and (block tier) the codec's directory
  // round-trip audit. O(n + num_terms); for tests, the fuzz harnesses and
  // post-build audits — never on a query path.
  void CheckInvariants() const;

 private:
  // Builds offsets_ / ndv1_ from the sorted triples_ in one pass.
  void BuildLevel0Offsets();

  // Overlay-view implementations (out of line; see delta.h for the merged
  // position space they realize).
  Triple ViewTripleAt(uint32_t pos) const;
  TermId ViewKeyAt(uint32_t pos, int level) const;
  Range ViewLevel0Range(TermId value) const;
  // First merged position whose level-0 key is >= `value` (the merged CSR
  // rank: live base triples below the base offset plus adds below value).
  uint32_t ViewLowerBound0(TermId value) const;
  // First position in [lo, hi) whose `level` key is >= / > `value`.
  uint32_t ViewLowerBound(uint32_t lo, uint32_t hi, int level,
                          TermId value) const;
  uint32_t ViewUpperBound(uint32_t lo, uint32_t hi, int level,
                          TermId value) const;
  Range ViewNarrow(Range range, int level, TermId value) const;
  uint32_t ViewSeekGE(Range range, int level, TermId value,
                      uint32_t from) const;
  uint32_t ViewBlockEnd(Range range, int level, uint32_t pos) const;
  void ViewCheckInvariants() const;

  IndexOrder order_;
  StorageTier tier_ = StorageTier::kRaw;
  uint32_t size_ = 0;
  std::vector<Triple> triples_;           // raw tier (empty after compress)
  std::array<BlockedColumn, 3> cols_;     // block tier, one column per level
  // offsets_[v] .. offsets_[v + 1]: the level-0 block of term v
  // (CSR layout over the dictionary-dense TermId space).
  std::vector<uint32_t> offsets_;
  uint32_t num_terms_ = 0;
  uint64_t ndv1_ = 0;
  // Overlay view only: the merged-over base index and its delta. Null for
  // owning indexes; both pinned by the owning GraphVersion for views.
  const TrieIndex* base_ = nullptr;
  const OrderDelta* delta_ = nullptr;
};

}  // namespace kgoa

#endif  // KGOA_INDEX_TRIE_INDEX_H_
