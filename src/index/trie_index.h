// Sorted-array trie index over the triples of a graph, for one component
// order. This is the paper's index representation for CTJ and Audit Join
// (section V-A): a flat std::vector sorted lexicographically, where each
// trie "node" is a contiguous range and each search is O(log n).
#ifndef KGOA_INDEX_TRIE_INDEX_H_
#define KGOA_INDEX_TRIE_INDEX_H_

#include <cstdint>
#include <vector>

#include "src/index/order.h"
#include "src/rdf/types.h"

namespace kgoa {

// Half-open range of positions in the sorted triple array.
struct Range {
  uint32_t begin = 0;
  uint32_t end = 0;

  uint32_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }

  friend bool operator==(const Range&, const Range&) = default;
};

class TrieIndex {
 public:
  // Copies and sorts `triples` under `order`. Input must be duplicate-free
  // (Graph guarantees this).
  TrieIndex(IndexOrder order, const std::vector<Triple>& triples);

  TrieIndex(const TrieIndex&) = delete;
  TrieIndex& operator=(const TrieIndex&) = delete;
  TrieIndex(TrieIndex&&) = default;

  IndexOrder order() const { return order_; }
  uint32_t size() const { return static_cast<uint32_t>(triples_.size()); }
  Range Root() const { return Range{0, size()}; }

  const Triple& TripleAt(uint32_t pos) const { return triples_[pos]; }

  // Value stored at trie `level` for the triple at `pos`.
  TermId KeyAt(uint32_t pos, int level) const {
    return triples_[pos][OrderComponent(order_, level)];
  }

  // Sub-range of `range` whose `level` value equals `value`. `range` must
  // be a trie node at depth `level` (root or the result of narrowing levels
  // 0..level-1). O(log |range|).
  Range Narrow(Range range, int level, TermId value) const;

  // First position in [from, range.end) whose `level` value is >= `value`.
  // Positions before `from` are assumed already consumed (leapfrog seek).
  uint32_t SeekGE(Range range, int level, TermId value, uint32_t from) const;

  // End of the block of equal `level` values starting at `pos`.
  uint32_t BlockEnd(Range range, int level, uint32_t pos) const;

  // Number of distinct `level` values in `range` (a depth-`level` node).
  // O(d log n) for d distinct values.
  uint64_t CountDistinct(Range range, int level) const;

 private:
  IndexOrder order_;
  std::vector<Triple> triples_;
};

}  // namespace kgoa

#endif  // KGOA_INDEX_TRIE_INDEX_H_
