#include "src/eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/join/ctj.h"
#include "src/util/contract.h"

namespace kgoa {

double MeanAbsoluteError(const GroupedResult& exact,
                         const GroupedEstimates& estimates) {
  if (exact.counts.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [group, count] : exact.counts) {
    KGOA_DCHECK(count > 0);
    const double estimate = estimates.Estimate(group);
    sum += std::abs(estimate - static_cast<double>(count)) /
           static_cast<double>(count);
  }
  return sum / static_cast<double>(exact.counts.size());
}

double MeanRelativeCi(const GroupedResult& exact,
                      const GroupedEstimates& estimates) {
  if (exact.counts.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [group, count] : exact.counts) {
    sum += estimates.CiHalfWidth(group) / static_cast<double>(count);
  }
  return sum / static_cast<double>(exact.counts.size());
}

double QuerySelectivity(const IndexSet& indexes, const ChainQuery& query) {
  // Denominator: join size with every constant freed (and filters
  // dropped). Fresh variables appear once each, so the chain contract
  // still holds.
  VarId fresh = 1'000'000;
  std::vector<TriplePattern> freed;
  for (const TriplePattern& pattern : query.patterns()) {
    TriplePattern copy = pattern;
    for (int c = 0; c < 3; ++c) {
      if (!copy[c].is_var()) copy[c] = Slot::MakeVar(fresh++);
    }
    freed.push_back(copy);
  }
  auto unfiltered = ChainQuery::Create(freed, query.alpha(), query.beta(),
                                       /*distinct=*/false);
  KGOA_CHECK(unfiltered.has_value());
  CtjEngine engine(indexes);
  const double denominator =
      static_cast<double>(engine.Evaluate(*unfiltered).Total());
  if (denominator == 0) return 0.0;

  // Numerators: per-group non-distinct join sizes of the real query.
  const GroupedResult sizes = engine.Evaluate(query.WithDistinct(false));
  if (sizes.counts.empty()) return 1.0;
  double sum = 0.0;
  for (const auto& [group, count] : sizes.counts) {
    sum += std::max(0.0, 1.0 - static_cast<double>(count) / denominator);
  }
  return sum / static_cast<double>(sizes.counts.size());
}

}  // namespace kgoa
