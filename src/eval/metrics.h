// Error and selectivity metrics of the paper's experimental study
// (section V-B, "Queries").
#ifndef KGOA_EVAL_METRICS_H_
#define KGOA_EVAL_METRICS_H_

#include "src/index/index_set.h"
#include "src/join/result.h"
#include "src/ola/estimator.h"
#include "src/query/chain_query.h"

namespace kgoa {

// Mean absolute error: the absolute difference between the exact and
// estimated count divided by the exact count, averaged over all groups of
// the exact result (a group the estimator never reached counts as error 1).
double MeanAbsoluteError(const GroupedResult& exact,
                         const GroupedEstimates& estimates);

// Average 0.95 confidence-interval half-width relative to the exact count,
// over the groups of the exact result (the "WJ CI" / "AJ CI" series of
// Figure 8).
double MeanRelativeCi(const GroupedResult& exact,
                      const GroupedEstimates& estimates);

// Selectivity per the paper: 1 - (join size including filters) / (join
// size without filters), where the query's constants act as the filters
// and each group contributes its own numerator; the reported value
// averages over groups. The denominator is the join size of the query
// with every constant replaced by a fresh variable.
double QuerySelectivity(const IndexSet& indexes, const ChainQuery& query);

}  // namespace kgoa

#endif  // KGOA_EVAL_METRICS_H_
