// Time-series runner for the online-aggregation experiments: runs Wander
// Join or Audit Join for a wall-clock budget, recording the mean absolute
// error and mean confidence-interval width at evenly spaced checkpoints —
// the data behind Figures 8, 9 and 10 — plus the rejection-rate statistics
// behind Figure 11.
#ifndef KGOA_EVAL_RUNNER_H_
#define KGOA_EVAL_RUNNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/index/index_set.h"
#include "src/join/result.h"
#include "src/ola/parallel.h"
#include "src/query/chain_query.h"

namespace kgoa {

enum class OlaAlgo { kWander, kAudit };

inline const char* OlaAlgoName(OlaAlgo algo) {
  return algo == OlaAlgo::kWander ? "WJ" : "AJ";
}

struct OlaRunOptions {
  OlaAlgo algo = OlaAlgo::kAudit;
  double duration_seconds = 2.0;
  int checkpoints = 10;
  uint64_t seed = 1;
  // Walk order; empty selects the default (forward for WJ, anchor-first
  // for AJ).
  std::vector<int> walk_order;
  double tipping_threshold = 64.0;
  bool enable_tipping = true;
  bool adaptive_tipping = false;  // see AuditJoin::Options
};

struct TimePoint {
  double seconds = 0;
  double mae = 0;
  double mean_ci = 0;
  uint64_t walks = 0;
  uint64_t rejected = 0;
  // Cumulative engine counters at this checkpoint (zero for counters the
  // running engine does not track).
  OlaCounters counters;
};

struct OlaRunResult {
  std::vector<TimePoint> points;
  uint64_t walks = 0;
  double rejection_rate = 0;
  uint64_t duplicates = 0;  // Wander Join distinct mode only
  uint64_t tipped = 0;      // Audit Join only
  OlaCounters counters;     // final cumulative engine counters
  double final_mae = 0;
};

// One-line JSON convergence trace of a finished run: the checkpoint
// series with error, CI and the cumulative engine counters at each point.
// The benches print one such line per (query, algorithm), prefixed with
// "trace ", so runs can be scraped into time-vs-error curves.
std::string OlaTraceJson(std::string_view label, const OlaRunResult& run);

// Runs the chosen algorithm against `query` for the configured duration;
// errors are measured against `exact` (which must match query.distinct()).
// The clock includes engine construction (plan compilation, statistics).
OlaRunResult RunOla(const IndexSet& indexes, const ChainQuery& query,
                    const GroupedResult& exact, const OlaRunOptions& options);

// Default Audit Join order: start at the pattern containing alpha and
// beta, then extend outward (so the group is bound immediately and the
// remaining chain is a single segment, maximizing CTJ cache reuse).
std::vector<int> DefaultAuditOrder(const ChainQuery& query);

// The paper's per-query Wander Join order selection: try every candidate
// walk order briefly and keep the one with the lowest final error.
std::vector<int> SelectBestWalkOrder(const IndexSet& indexes,
                                     const ChainQuery& query,
                                     const GroupedResult& exact,
                                     OlaAlgo algo,
                                     double seconds_per_candidate,
                                     uint64_t seed);

// Accuracy-driven termination: runs Audit Join until the average
// confidence-interval half-width falls below `epsilon` relative to each
// group's own estimate — the "wait until the bars stabilize" interaction
// the online-aggregation UI model implies (no ground truth needed).
struct CiTerminationResult {
  std::unordered_map<TermId, double> estimates;
  double mean_relative_ci = 0;  // at termination
  double seconds = 0;
  uint64_t walks = 0;
  bool converged = false;  // false = hit max_seconds first
};

CiTerminationResult RunUntilCi(const IndexSet& indexes,
                               const ChainQuery& query, double epsilon,
                               double max_seconds,
                               const OlaRunOptions& options);

}  // namespace kgoa

#endif  // KGOA_EVAL_RUNNER_H_
