// Statistical profiles of a knowledge graph — the "graph profiling"
// use case of the paper's related work (section II): summarizing a large
// graph by its most popular classes and properties, degree statistics and
// composition, the kind of summary systems like LODStats or ProLOD++
// compute offline and that Audit Join can approximate online.
#ifndef KGOA_EVAL_PROFILE_H_
#define KGOA_EVAL_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/rdf/graph.h"

namespace kgoa {

struct GraphProfile {
  uint64_t triples = 0;
  uint64_t terms = 0;
  uint64_t classes = 0;
  uint64_t properties = 0;
  uint64_t typed_entities = 0;     // distinct subjects of rdf:type
  uint64_t type_triples = 0;
  uint64_t subclass_triples = 0;
  double literal_object_fraction = 0;  // property triples with a literal
  double mean_out_degree = 0;          // property triples per subject
  uint32_t max_out_degree = 0;

  struct Ranked {
    TermId term = kInvalidTerm;
    uint64_t count = 0;
  };
  std::vector<Ranked> top_classes;     // by instance count
  std::vector<Ranked> top_properties; // by triple count (non-structural)
};

// Computes the profile in one pass over the graph (plus the rankings).
GraphProfile ProfileGraph(const Graph& graph, int top_k = 10);

// Plain-text rendering.
std::string RenderProfile(const Graph& graph, const GraphProfile& profile);

}  // namespace kgoa

#endif  // KGOA_EVAL_PROFILE_H_
