#include "src/eval/registry.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "src/core/audit.h"
#include "src/core/mutable_graph.h"
#include "src/index/block_codec.h"
#include "src/index/index_set.h"
#include "src/index/kernels.h"
#include "src/ola/wander.h"
#include "src/shard/coordinator.h"
#include "src/util/simd.h"

namespace kgoa {

namespace {

std::string FmtDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string FmtCounter(uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  return buffer;
}

}  // namespace

void MetricsRegistry::Add(std::string_view name, uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::SetCounter(std::string_view name, uint64_t value) {
  counters_.insert_or_assign(std::string(name), value);
}

uint64_t MetricsRegistry::Counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  gauges_.insert_or_assign(std::string(name), value);
}

double MetricsRegistry::Gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricsRegistry::Clear() {
  counters_.clear();
  gauges_.clear();
}

std::string MetricsRegistry::ToText() const {
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += name;
    out += ' ';
    out += FmtCounter(value);
    out += '\n';
  }
  for (const auto& [name, value] : gauges_) {
    out += name;
    out += ' ';
    out += FmtDouble(value);
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    out += FmtCounter(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    out += FmtDouble(value);
  }
  out += "}}";
  return out;
}

void ExportMetrics(const AuditJoin& engine, std::string_view prefix,
                   MetricsRegistry* registry) {
  const std::string p(prefix);
  registry->Add(p + "walks", engine.estimates().walks());
  registry->Add(p + "rejected_walks", engine.estimates().rejected_walks());
  registry->Add(p + "tipped_walks", engine.tipped_walks());
  registry->Add(p + "full_walks", engine.full_walks());
  registry->Add(p + "tip_aborts", engine.tip_aborts());
  registry->Add(p + "ctj_cache_hits", engine.suffix_cache_hits());
  registry->Add(p + "batched_walks", engine.batched_walks());
  if (engine.owns_reach()) {
    // A shared cache is exported once by its owner (executor or
    // session registry), not per engine.
    const ShardedTableStats reach = engine.reach().stats();
    registry->Add(p + "reach_hits", reach.hits);
    registry->Add(p + "reach_misses", reach.misses);
    registry->Add(p + "reach_contention", reach.insert_contention);
    registry->SetCounter(p + "reach_entries", reach.entries);
  }
}

void ExportMetrics(const WanderJoin& engine, std::string_view prefix,
                   MetricsRegistry* registry) {
  const std::string p(prefix);
  registry->Add(p + "walks", engine.estimates().walks());
  registry->Add(p + "rejected_walks", engine.estimates().rejected_walks());
  registry->Add(p + "full_walks", engine.estimates().walks() -
                                      engine.estimates().rejected_walks());
  registry->Add(p + "duplicate_walks", engine.duplicate_walks());
  registry->Add(p + "batched_walks", engine.batched_walks());
}

void ExportMetrics(const OlaCounters& counters, std::string_view prefix,
                   MetricsRegistry* registry) {
  const std::string p(prefix);
  registry->Add(p + "tipped_walks", counters.tipped_walks);
  registry->Add(p + "full_walks", counters.full_walks);
  registry->Add(p + "tip_aborts", counters.tip_aborts);
  registry->Add(p + "ctj_cache_hits", counters.ctj_cache_hits);
  registry->Add(p + "duplicate_walks", counters.duplicate_walks);
  registry->Add(p + "reach_hits", counters.reach_hits);
  registry->Add(p + "reach_misses", counters.reach_misses);
  registry->Add(p + "reach_contention", counters.reach_contention);
  registry->Add(p + "pruned_walks", counters.pruned_walks);
  registry->Add(p + "batched_walks", counters.batched_walks);
  registry->SetCounter(p + "reach_entries", counters.reach_entries);
}

void ExportMetrics(const ServeStats& stats, std::string_view prefix,
                   MetricsRegistry* registry) {
  const std::string p(prefix);
  registry->SetCounter(p + "threads", stats.threads);
  registry->SetCounter(p + "jobs_submitted", stats.jobs_submitted);
  registry->SetCounter(p + "jobs_completed", stats.jobs_completed);
  registry->SetCounter(p + "jobs_cancelled", stats.jobs_cancelled);
  registry->SetCounter(p + "quanta", stats.quanta);
  registry->SetCounter(p + "preemptions", stats.preemptions);
  registry->SetCounter(p + "walks", stats.walks);
  registry->SetCounter(p + "live_jobs", stats.live_jobs);
  registry->SetCounter(p + "max_live_jobs", stats.max_live_jobs);
  registry->SetGauge(p + "last_cancel_latency_seconds",
                     stats.last_cancel_latency_seconds);
}

void ExportMetrics(const IndexSet& indexes, std::string_view prefix,
                   MetricsRegistry* registry) {
  const std::string p(prefix);
  const IndexBuildStats& stats = indexes.build_stats();
  registry->SetCounter(p + "triples", indexes.NumTriples());
  registry->SetCounter(p + "memory_bytes", indexes.ApproxMemoryBytes());
  // Per-tier resident bytes (exactly one is nonzero — the four orders
  // share a storage tier). The raw/block split is what the memory-ratio
  // bench and ShardedGraph accounting read back.
  registry->SetCounter(p + "memory_bytes.raw", indexes.RawStorageBytes());
  registry->SetCounter(p + "memory_bytes.block", indexes.BlockStorageBytes());
  registry->SetGauge(p + "build_ms", stats.total_ms);
  registry->SetGauge(p + "compress_ms", stats.compress_ms);
  uint64_t depth1_entries = 0;
  uint64_t depth2_entries = 0;
  for (IndexOrder order : kAllIndexOrders) {
    const int o = static_cast<int>(order);
    std::string name(OrderName(order));
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    registry->SetGauge(p + "sort_ms." + name, stats.sort_ms[o]);
    registry->SetGauge(p + "hash_ms." + name, stats.hash_ms[o]);
    // Overlay views carry no hash tables (src/index/index_set.h).
    if (indexes.has_hash()) {
      depth1_entries += indexes.Hash(order).Depth1Entries();
      depth2_entries += indexes.Hash(order).Depth2Entries();
    }
  }
  registry->SetCounter(p + "depth1_entries", depth1_entries);
  registry->SetCounter(p + "depth2_entries", depth2_entries);
}

void ExportMetrics(const ShardCoordinator& coordinator,
                   std::string_view prefix, MetricsRegistry* registry) {
  const std::string p(prefix);
  const ShardServeStats stats = coordinator.stats();
  registry->SetCounter(p + "count", static_cast<uint64_t>(stats.shards));
  registry->SetCounter(p + "jobs_submitted", stats.jobs_submitted);
  registry->SetCounter(p + "shard_jobs_submitted",
                       stats.shard_jobs_submitted);
  registry->SetCounter(p + "threads", stats.cores.threads);
  registry->SetCounter(p + "core_jobs_submitted",
                       stats.cores.jobs_submitted);
  registry->SetCounter(p + "core_jobs_completed",
                       stats.cores.jobs_completed);
  registry->SetCounter(p + "core_jobs_cancelled",
                       stats.cores.jobs_cancelled);
  registry->SetCounter(p + "quanta", stats.cores.quanta);
  registry->SetCounter(p + "walks", stats.cores.walks);
  const ShardPartitionStats& partition = coordinator.partition_stats();
  registry->SetCounter(p + "triples_min", partition.min_triples);
  registry->SetCounter(p + "triples_max", partition.max_triples);
  registry->SetCounter(p + "triples_total", partition.total_triples);
  registry->SetGauge(p + "balance", partition.balance);
}

void ExportMetrics(const MutableGraph& mutable_graph, std::string_view prefix,
                   MetricsRegistry* registry) {
  const std::string p(prefix);
  const MutableGraph::Stats stats = mutable_graph.stats();
  registry->SetCounter(p + "current", stats.epoch);
  registry->SetCounter(p + "base_triples", stats.base_triples);
  registry->SetCounter(p + "live_triples", stats.live_triples);
  registry->SetCounter(p + "overlay_adds", stats.overlay_adds);
  registry->SetCounter(p + "overlay_dels", stats.overlay_dels);
  registry->SetCounter(p + "batches_applied", stats.batches_applied);
  registry->SetCounter(p + "compactions", stats.compactions);
  registry->SetCounter(p + "snapshots_pinned", stats.snapshots_pinned);
}

void ExportIndexProbeCounters(std::string_view prefix,
                              MetricsRegistry* registry) {
  const std::string p(prefix);
  const IndexProbeCounters& probes = t_index_probes;
  registry->SetCounter(p + "depth1_probes", probes.depth1_probes);
  registry->SetCounter(p + "depth2_probes", probes.depth2_probes);
  registry->SetCounter(p + "ndv_probes", probes.ndv_probes);
}

void ExportSimdMetrics(std::string_view prefix, MetricsRegistry* registry) {
  const std::string p(prefix);
  const SimdLevel level = CurrentSimdLevel();
  registry->SetCounter(p + "level", static_cast<uint64_t>(level));
  registry->SetCounter(p + "level." + SimdLevelName(level), 1);
  registry->SetCounter(p + "probe_prefetch_depth",
                       kernels::kProbePrefetchDepth);
  registry->SetCounter(p + "decode_cache_hits", t_decode_cache.hits);
  registry->SetCounter(p + "decode_cache_misses", t_decode_cache.misses);
}

std::string SnapshotJson(const OlaSnapshot& snapshot) {
  std::string out = "{";
  out += "\"elapsed_seconds\":" + FmtDouble(snapshot.elapsed_seconds);
  out += ",\"final\":" + std::string(snapshot.final_snapshot ? "true"
                                                             : "false");
  out += ",\"walks\":" + FmtCounter(snapshot.walks);
  out += ",\"rejected_walks\":" + FmtCounter(snapshot.rejected_walks);
  out += ",\"walks_per_second\":" + FmtDouble(snapshot.walks_per_second);
  out += ",\"rejection_rate\":" + FmtDouble(snapshot.rejection_rate);
  out += ",\"tipped_walks\":" + FmtCounter(snapshot.counters.tipped_walks);
  out += ",\"full_walks\":" + FmtCounter(snapshot.counters.full_walks);
  out += ",\"tip_aborts\":" + FmtCounter(snapshot.counters.tip_aborts);
  out +=
      ",\"ctj_cache_hits\":" + FmtCounter(snapshot.counters.ctj_cache_hits);
  out += ",\"duplicate_walks\":" +
         FmtCounter(snapshot.counters.duplicate_walks);
  out += ",\"reach_hits\":" + FmtCounter(snapshot.counters.reach_hits);
  out += ",\"reach_misses\":" + FmtCounter(snapshot.counters.reach_misses);
  out += ",\"reach_contention\":" +
         FmtCounter(snapshot.counters.reach_contention);
  out += ",\"reach_entries\":" + FmtCounter(snapshot.counters.reach_entries);
  out += ",\"pruned_walks\":" + FmtCounter(snapshot.counters.pruned_walks);
  out += ",\"batched_walks\":" +
         FmtCounter(snapshot.counters.batched_walks);
  out += ",\"displayed_converged\":" +
         std::string(snapshot.displayed_converged ? "true" : "false");
  out += ",\"groups\":{";
  if (snapshot.estimates != nullptr) {
    std::vector<std::pair<TermId, double>> groups;
    for (const auto& [group, estimate] : snapshot.estimates->Estimates()) {
      groups.emplace_back(group, estimate);
    }
    std::sort(groups.begin(), groups.end());
    bool first = true;
    for (const auto& [group, estimate] : groups) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += FmtCounter(group);
      out += "\":{\"estimate\":";
      out += FmtDouble(estimate);
      out += ",\"ci\":";
      out += FmtDouble(snapshot.estimates->CiHalfWidth(group));
      out += '}';
    }
  }
  out += "}}";
  return out;
}

}  // namespace kgoa
