// Metrics registry: named monotonic counters and point-in-time gauges
// with deterministic text and JSON dumps.
//
// The engines expose their work counters as plain accessors (tipped
// walks, tip aborts, CTJ cache hits, full walks, ...); the registry is
// the sink they are exported into so the REPL and every bench harness can
// emit one machine-readable block instead of ad-hoc printf lines. Names
// are dotted lowercase paths ("aj.tipped_walks", "explorer.charts");
// dumps are sorted by name, so diffs of two runs line up.
//
// The registry itself is not synchronized: the parallel executor merges
// per-worker counters first (src/ola/parallel.h) and a single thread
// exports the result.
#ifndef KGOA_EVAL_REGISTRY_H_
#define KGOA_EVAL_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "src/ola/parallel.h"

namespace kgoa {

class AuditJoin;
class IndexSet;
class MutableGraph;
class ShardCoordinator;
class WanderJoin;

class MetricsRegistry {
 public:
  // Counters: monotonic event counts.
  void Add(std::string_view name, uint64_t delta);
  void SetCounter(std::string_view name, uint64_t value);
  uint64_t Counter(std::string_view name) const;  // 0 when absent

  // Gauges: last-written point-in-time values.
  void SetGauge(std::string_view name, double value);
  double Gauge(std::string_view name) const;  // 0.0 when absent

  bool empty() const { return counters_.empty() && gauges_.empty(); }
  void Clear();

  // "name value\n" per metric, counters then gauges, sorted by name.
  std::string ToText() const;

  // {"counters":{"name":value,...},"gauges":{...}}, sorted by name.
  std::string ToJson() const;

 private:
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
};

// Engine exports. `prefix` is prepended verbatim ("aj.", "wj.", ...).
void ExportMetrics(const AuditJoin& engine, std::string_view prefix,
                   MetricsRegistry* registry);
void ExportMetrics(const WanderJoin& engine, std::string_view prefix,
                   MetricsRegistry* registry);
void ExportMetrics(const OlaCounters& counters, std::string_view prefix,
                   MetricsRegistry* registry);

// Serving-core export ("serve." by convention): queue depth and job
// lifecycle as counters, cancellation latency as a gauge. Cumulative
// values are republished with SetCounter, so repeated exports of the same
// core do not double-count.
void ExportMetrics(const ServeStats& stats, std::string_view prefix,
                   MetricsRegistry* registry);

// Index-layer export: per-order build times (sort + CSR offsets, flat hash
// tables) as gauges, entry counts / triples / resident bytes as counters.
void ExportMetrics(const IndexSet& indexes, std::string_view prefix,
                   MetricsRegistry* registry);

// Sharded-serving export ("shard." by convention): shard count, scatter
// and per-shard job counts, aggregated core scheduler totals, and the
// partition's triple placement (min/max/total + balance gauge).
// Cumulative values are republished with SetCounter.
void ExportMetrics(const ShardCoordinator& coordinator,
                   std::string_view prefix, MetricsRegistry* registry);

// Snapshot-epoch export ("epoch." by convention): current epoch, overlay
// sizes, live/base triple counts, applied batches, compactions, and the
// published-versions-still-pinned gauge. Cumulative values are
// republished with SetCounter.
void ExportMetrics(const MutableGraph& mutable_graph, std::string_view prefix,
                   MetricsRegistry* registry);

// Exports the calling thread's flat-table probe counters
// (src/index/hash_range.h) — Depth1/Depth2/Ndv2 lookups issued since the
// thread's last Reset. Counters are thread-local so the sampling hot path
// never touches a shared cache line.
void ExportIndexProbeCounters(std::string_view prefix,
                              MetricsRegistry* registry);

// Kernel-layer export ("simd." by convention): the resolved dispatch
// level (`level` = 0 scalar / 1 sse4.2 / 2 avx2, with the name mirrored
// as `level.<name>` = 1 so text dumps stay self-describing), the probe
// pipeline's software-prefetch depth, and the calling thread's
// block decode-cache hits/misses (src/index/block_codec.h — thread-local
// for the same reason as the probe counters).
void ExportSimdMetrics(std::string_view prefix, MetricsRegistry* registry);

// One-line JSON form of a live parallel-run snapshot — one line per
// snapshot makes a convergence trace (the benches prefix each line with
// "trace "). Includes elapsed time, walk totals and rates, the merged
// engine counters, and per-group {"estimate","ci"} sorted by group id.
std::string SnapshotJson(const OlaSnapshot& snapshot);

}  // namespace kgoa

#endif  // KGOA_EVAL_REGISTRY_H_
