#include "src/eval/runner.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>

#include "src/core/audit.h"
#include "src/eval/metrics.h"
#include "src/ola/walk_plan.h"
#include "src/ola/wander.h"
#include "src/util/contract.h"
#include "src/util/stopwatch.h"

namespace kgoa {

std::vector<int> DefaultAuditOrder(const ChainQuery& query) {
  const int anchor = query.alpha_beta_pattern();
  std::vector<int> order{anchor};
  for (int i = anchor - 1; i >= 0; --i) order.push_back(i);
  for (int i = anchor + 1; i < query.NumPatterns(); ++i) order.push_back(i);
  return order;
}

OlaRunResult RunOla(const IndexSet& indexes, const ChainQuery& query,
                    const GroupedResult& exact,
                    const OlaRunOptions& options) {
  OlaRunResult result;
  Stopwatch clock;

  std::unique_ptr<WanderJoin> wander;
  std::unique_ptr<AuditJoin> audit;
  if (options.algo == OlaAlgo::kWander) {
    WanderJoin::Options wj;
    wj.seed = options.seed;
    wj.walk_order = options.walk_order;
    wander = std::make_unique<WanderJoin>(indexes, query, wj);
  } else {
    AuditJoin::Options aj;
    aj.seed = options.seed;
    aj.walk_order = options.walk_order.empty() ? DefaultAuditOrder(query)
                                               : options.walk_order;
    aj.tipping_threshold = options.tipping_threshold;
    aj.enable_tipping = options.enable_tipping;
    aj.adaptive_tipping = options.adaptive_tipping;
    audit = std::make_unique<AuditJoin>(indexes, query, aj);
  }
  auto estimates = [&]() -> const GroupedEstimates& {
    return wander ? wander->estimates() : audit->estimates();
  };
  auto run_batch = [&](uint64_t n) {
    if (wander) {
      wander->RunWalks(n);
    } else {
      audit->RunWalks(n);
    }
  };
  auto counters = [&]() {
    OlaCounters c;
    if (audit) {
      c.tipped_walks = audit->tipped_walks();
      c.full_walks = audit->full_walks();
      c.tip_aborts = audit->tip_aborts();
      c.ctj_cache_hits = audit->suffix_cache_hits();
      const ShardedTableStats reach = audit->reach().stats();
      c.reach_hits = reach.hits;
      c.reach_misses = reach.misses;
      c.reach_contention = reach.insert_contention;
      c.reach_entries = reach.entries;
    } else {
      c.full_walks =
          wander->estimates().walks() - wander->estimates().rejected_walks();
      c.duplicate_walks = wander->duplicate_walks();
    }
    return c;
  };

  KGOA_CHECK(options.checkpoints >= 1);
  const double interval =
      options.duration_seconds / static_cast<double>(options.checkpoints);
  for (int cp = 1; cp <= options.checkpoints; ++cp) {
    const double deadline = interval * cp;
    while (clock.ElapsedSeconds() < deadline) {
      run_batch(64);
    }
    TimePoint point;
    point.seconds = clock.ElapsedSeconds();
    point.mae = MeanAbsoluteError(exact, estimates());
    point.mean_ci = MeanRelativeCi(exact, estimates());
    point.walks = estimates().walks();
    point.rejected = estimates().rejected_walks();
    point.counters = counters();
    result.points.push_back(point);
  }

  result.walks = estimates().walks();
  result.rejection_rate = estimates().RejectionRate();
  result.final_mae = result.points.back().mae;
  result.counters = counters();
  if (wander) result.duplicates = wander->duplicate_walks();
  if (audit) result.tipped = audit->tipped_walks();
  return result;
}

std::string OlaTraceJson(std::string_view label, const OlaRunResult& run) {
  std::string out = "{\"label\":\"";
  for (char c : label) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\",\"points\":[";
  char buffer[448];
  for (std::size_t i = 0; i < run.points.size(); ++i) {
    const TimePoint& p = run.points[i];
    std::snprintf(
        buffer, sizeof(buffer),
        "%s{\"t\":%.4f,\"mae\":%.6g,\"mean_ci\":%.6g,\"walks\":%" PRIu64
        ",\"rejected\":%" PRIu64 ",\"tipped\":%" PRIu64
        ",\"tip_aborts\":%" PRIu64 ",\"ctj_cache_hits\":%" PRIu64
        ",\"full\":%" PRIu64 ",\"duplicates\":%" PRIu64
        ",\"reach_hits\":%" PRIu64 ",\"reach_misses\":%" PRIu64 "}",
        i == 0 ? "" : ",", p.seconds, p.mae, p.mean_ci, p.walks, p.rejected,
        p.counters.tipped_walks, p.counters.tip_aborts,
        p.counters.ctj_cache_hits, p.counters.full_walks,
        p.counters.duplicate_walks, p.counters.reach_hits,
        p.counters.reach_misses);
    out += buffer;
  }
  std::snprintf(buffer, sizeof(buffer),
                "],\"walks\":%" PRIu64 ",\"rejection_rate\":%.6g}", run.walks,
                run.rejection_rate);
  out += buffer;
  return out;
}

CiTerminationResult RunUntilCi(const IndexSet& indexes,
                               const ChainQuery& query, double epsilon,
                               double max_seconds,
                               const OlaRunOptions& options) {
  CiTerminationResult result;
  Stopwatch clock;

  AuditJoin::Options aj;
  aj.seed = options.seed;
  aj.walk_order = options.walk_order.empty() ? DefaultAuditOrder(query)
                                             : options.walk_order;
  aj.tipping_threshold = options.tipping_threshold;
  aj.enable_tipping = options.enable_tipping;
  aj.adaptive_tipping = options.adaptive_tipping;
  AuditJoin audit(indexes, query, aj);

  while (clock.ElapsedSeconds() < max_seconds) {
    audit.RunWalks(512);
    // Mean CI half-width relative to each group's own estimate.
    const auto estimates = audit.estimates().Estimates();
    if (estimates.empty()) continue;
    double sum = 0;
    for (const auto& [group, estimate] : estimates) {
      sum += audit.estimates().CiHalfWidth(group) /
             std::max(estimate, 1.0);
    }
    result.mean_relative_ci = sum / static_cast<double>(estimates.size());
    if (result.mean_relative_ci <= epsilon) {
      result.converged = true;
      break;
    }
  }
  result.estimates = audit.estimates().Estimates();
  result.seconds = clock.ElapsedSeconds();
  result.walks = audit.estimates().walks();
  return result;
}

std::vector<int> SelectBestWalkOrder(const IndexSet& indexes,
                                     const ChainQuery& query,
                                     const GroupedResult& exact,
                                     OlaAlgo algo,
                                     double seconds_per_candidate,
                                     uint64_t seed) {
  std::vector<int> best;
  double best_mae = -1;
  for (const auto& candidate : CandidateWalkOrders(query.NumPatterns())) {
    OlaRunOptions options;
    options.algo = algo;
    options.duration_seconds = seconds_per_candidate;
    options.checkpoints = 1;
    options.seed = seed;
    options.walk_order = candidate;
    const OlaRunResult run = RunOla(indexes, query, exact, options);
    if (best_mae < 0 || run.final_mae < best_mae) {
      best_mae = run.final_mae;
      best = candidate;
    }
  }
  return best;
}

}  // namespace kgoa
