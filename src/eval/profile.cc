#include "src/eval/profile.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "src/util/table.h"

namespace kgoa {

namespace {

// Literal spellings are stored quoted (see src/rdf/ntriples.cc).
bool IsLiteral(const Graph& graph, TermId id) {
  const std::string_view term = graph.dict().Spell(id);
  return !term.empty() && term.front() == '"';
}

std::vector<GraphProfile::Ranked> TopK(
    const std::unordered_map<TermId, uint64_t>& counts, int k) {
  std::vector<GraphProfile::Ranked> ranked;
  ranked.reserve(counts.size());
  for (const auto& [term, count] : counts) {
    ranked.push_back({term, count});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const GraphProfile::Ranked& a, const GraphProfile::Ranked& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.term < b.term;
            });
  if (static_cast<int>(ranked.size()) > k) ranked.resize(k);
  return ranked;
}

}  // namespace

GraphProfile ProfileGraph(const Graph& graph, int top_k) {
  GraphProfile profile;
  profile.triples = graph.NumTriples();
  profile.terms = graph.dict().size();

  std::unordered_map<TermId, uint64_t> class_sizes;
  std::unordered_map<TermId, uint64_t> property_counts;
  std::unordered_map<TermId, uint32_t> out_degree;
  std::unordered_set<TermId> typed;
  uint64_t property_triples = 0;
  uint64_t literal_objects = 0;

  for (const Triple& t : graph.triples()) {
    if (t.p == graph.rdf_type()) {
      ++profile.type_triples;
      ++class_sizes[t.o];
      typed.insert(t.s);
    } else if (t.p == graph.subclass_of()) {
      ++profile.subclass_triples;
    } else {
      ++property_triples;
      ++property_counts[t.p];
      ++out_degree[t.s];
      if (IsLiteral(graph, t.o)) ++literal_objects;
    }
  }

  profile.classes = class_sizes.size();
  profile.properties = property_counts.size();
  profile.typed_entities = typed.size();
  profile.literal_object_fraction =
      property_triples == 0
          ? 0
          : static_cast<double>(literal_objects) /
                static_cast<double>(property_triples);
  profile.mean_out_degree =
      out_degree.empty() ? 0
                         : static_cast<double>(property_triples) /
                               static_cast<double>(out_degree.size());
  for (const auto& [subject, degree] : out_degree) {
    profile.max_out_degree = std::max(profile.max_out_degree, degree);
  }
  profile.top_classes = TopK(class_sizes, top_k);
  profile.top_properties = TopK(property_counts, top_k);
  return profile;
}

std::string RenderProfile(const Graph& graph, const GraphProfile& profile) {
  std::ostringstream out;
  out << "triples: " << profile.triples << "  (type: "
      << profile.type_triples << ", subClassOf: " << profile.subclass_triples
      << ")\n";
  out << "terms: " << profile.terms << "  classes: " << profile.classes
      << "  properties: " << profile.properties
      << "  typed entities: " << profile.typed_entities << '\n';
  out << "literal objects: "
      << TextTable::FmtPercent(profile.literal_object_fraction)
      << "  mean out-degree: " << TextTable::Fmt(profile.mean_out_degree, 2)
      << "  max out-degree: " << profile.max_out_degree << '\n';

  auto render_ranked = [&](const char* title,
                           const std::vector<GraphProfile::Ranked>& ranked) {
    out << title << ":\n";
    for (const auto& entry : ranked) {
      out << "  " << graph.dict().Spell(entry.term) << "  " << entry.count
          << '\n';
    }
  };
  render_ranked("top classes (by instances)", profile.top_classes);
  render_ranked("top properties (by triples)", profile.top_properties);
  return out.str();
}

}  // namespace kgoa
