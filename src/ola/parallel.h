// Persistent serving core for parallel online aggregation.
//
// The OLA literature the paper surveys (section II) includes parallel and
// distributed variants (PF-OLA, online aggregation for MapReduce). Both
// Wander Join and Audit Join parallelize embarrassingly: walks are i.i.d.,
// the indexes are immutable, and every engine-local cache (CTJ suffix
// counts, reach probabilities) is private to its worker — so independent
// workers with distinct seeds can simply merge their accumulators
// (GroupedEstimates::Merge) and the combined estimator is the same as one
// sequential run with the union of the walks.
//
// Interactive exploration adds a second dimension: a user clicks a bar,
// watches the chart converge, and clicks again — often before the previous
// chart finishes. Spawning a fresh thread pool per chart (the pre-serving
// design) cannot express that; this layer can:
//
//  * ServingCore — one long-lived worker pool (the only place in the repo
//    allowed to construct std::thread; lint-enforced). Workers time-slice
//    across all live jobs in fixed walk quanta, so k concurrent charts all
//    make visible progress instead of running head-of-line.
//
//  * ChartJob / ChartHandle — a submitted chart query. Each job carries a
//    cancellation token (observed between quanta, so Cancel() returns the
//    pool to other jobs within one quantum, never joining or respawning
//    threads), a priority, a deadline or walk budget, and an optional
//    snapshot-subscription callback. Handles expose Snapshot() (live
//    merged partials), Cancel() and Await().
//
//  * ParallelOlaExecutor — the original synchronous API, now a thin
//    wrapper that owns a private ServingCore and submits one job per Run
//    call; the pool persists across calls.
//
// Scheduling never touches estimator semantics. A job in walk-budget mode
// splits its budget over `workers` logical slots (slot w runs exactly its
// share with seed seed + w, engines are slot-private, shared reach-cache
// entries are value-pure), and the final merge folds slot estimates in
// slot order — so a budgeted job's estimate is a pure function of
// (query, seed, budget, workers): bit-identical across pool sizes AND
// across running solo vs. alongside any number of competing jobs.
//
// Deadline mode (walk_budget == 0) runs every slot until a wall-clock
// deadline fixed at submit time; walk counts — and therefore estimates —
// vary run to run. This is the interactive serving mode.
#ifndef KGOA_OLA_PARALLEL_H_
#define KGOA_OLA_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/index/index_set.h"
#include "src/index/snapshot.h"
#include "src/ola/engine.h"
#include "src/ola/estimator.h"
#include "src/ola/topk.h"
#include "src/query/chain_query.h"
#include "src/util/sync.h"

namespace kgoa {

class ReachProbability;
class WalkPlan;

struct ParallelOlaOptions {
  // OS threads in the executor's pool. Never affects budget-mode results;
  // budget-mode concurrency is additionally capped by `workers`.
  int threads = 2;
  uint64_t seed = 1;             // logical worker w uses seed + w
  OlaEngineKind engine = OlaEngineKind::kAudit;
  std::vector<int> walk_order;   // empty = engine default
  double tipping_threshold = 64.0;  // Audit Join only
  // Walks per structure-of-arrays batch inside each slot's quantum
  // (0 = kDefaultWalkBatch, 1 = unbatched). Never affects budget-mode
  // results: estimates are bit-identical for every width.
  uint32_t batch_walks = 0;

  // Budget mode: number of logical workers the budget is split across.
  // Part of the deterministic run identity — changing it changes the
  // estimate (like changing the seed), whereas changing `threads` never
  // does.
  int workers = 4;

  // Walks a worker runs per time slice (and between partial publications
  // and cancellation checks).
  uint64_t publish_every = 256;

  // Seconds between snapshot callbacks (when a callback is given).
  double snapshot_period = 0.05;

  // Audit Join distinct mode: share ONE reach-probability cache across
  // every worker of a run, so each distinct (a, b) pair is audited once
  // per run instead of once per thread. Sharing preserves the
  // walk-budget bit-identity guarantee (memo values are pure functions of
  // the plan, so insert races are benign — src/core/reach.h); only the
  // cache counters become scheduling-dependent.
  bool share_reach = true;

  // Optional externally owned cache (e.g. an exploration session reusing
  // audits across queries on the same walk plan — src/explore/cache.h).
  // Must match this run's (query, walk order) and outlive the executor;
  // takes precedence over share_reach's per-run cache.
  ReachProbability* shared_reach = nullptr;
};

// A live view of the merged run state, valid only during the callback.
struct OlaSnapshot {
  double elapsed_seconds = 0;
  uint64_t walks = 0;
  uint64_t rejected_walks = 0;
  double walks_per_second = 0;
  double rejection_rate = 0;
  OlaCounters counters;
  // Merged partial estimates: per-group Estimate() / CiHalfWidth().
  // Owned by the caller of the callback; do not retain past the callback.
  const GroupedEstimates* estimates = nullptr;
  // Top-K serving (jobs with top_k.k > 0): the displayed chart — the K
  // largest groups — is settled and converged (src/ola/topk.h). Stays
  // false when top-K serving is off.
  bool displayed_converged = false;
  // True for the one snapshot emitted after the job finished.
  bool final_snapshot = false;
};

// Snapshot callbacks are invoked from pool worker threads, but never
// concurrently for the same job (serialized per job).
using OlaSnapshotCallback = std::function<void(const OlaSnapshot&)>;

struct ParallelOlaResult {
  GroupedEstimates estimates;
  OlaCounters counters;
  double elapsed_seconds = 0;
  int workers = 0;  // logical workers that ran
  // Top-K serving: displayed chart settled and converged at the end of
  // the run (false when top-K serving is off).
  bool displayed_converged = false;
};

// ---------------------------------------------------------------------------
// Async serving API
// ---------------------------------------------------------------------------

enum class ChartJobState : int { kQueued, kRunning, kDone, kCancelled };

const char* ChartJobStateName(ChartJobState state);

struct ChartJobOptions {
  // > 0: deterministic walk-budget mode — exactly this many walks, split
  // across `workers` logical slots, merged in slot order.
  uint64_t walk_budget = 0;
  // Budget == 0: deadline mode — every slot walks until this many seconds
  // after submission.
  double deadline_seconds = 0.1;

  // Higher-priority jobs are always scheduled first; ties share the pool
  // round-robin, one quantum at a time.
  int priority = 0;

  // Logical workers (budget-run identity, see ParallelOlaOptions). Jobs
  // whose engine is not mergeable (Ripple) are clamped to 1.
  int workers = 4;
  // Max slots of this job running concurrently; 0 = no per-job cap (the
  // pool size is the cap).
  int max_concurrency = 0;

  uint64_t seed = 1;
  OlaEngineKind engine = OlaEngineKind::kAudit;
  std::vector<int> walk_order;  // empty = engine default
  double tipping_threshold = 64.0;
  // Walks per structure-of-arrays batch (0 = kDefaultWalkBatch,
  // 1 = unbatched); bit-identical estimates for every width.
  uint32_t batch_walks = 0;

  // Reach-cache sharing across the job's slots; same semantics as
  // ParallelOlaOptions. `shared_reach` (e.g. from the session's
  // ReachCacheRegistry) lets concurrent jobs on the same query share one
  // warm cache; it must outlive the job (pair it with `reach_keepalive`
  // when the cache's owner may evict it mid-flight).
  bool share_reach = true;
  ReachProbability* shared_reach = nullptr;
  // Pins whatever owns `shared_reach` (a registry cache entry) for the
  // job's lifetime, so eviction of a stale-epoch entry cannot free a
  // cache a running slot still audits through.
  std::shared_ptr<const void> reach_keepalive;

  // The graph version this job reads. Pinned for the job's whole
  // lifetime: walks keep running against exactly this version even while
  // writers land batches and compaction publishes newer epochs. Invalid
  // (default) = the core's default snapshot from construction time.
  GraphSnapshot snapshot;

  // Live snapshot subscription: called from pool threads at
  // `snapshot_period` cadence (serialized per job), plus one final
  // snapshot when the job retires — delivered before any Await() on the
  // job returns, so an Await-er may tear down state the callback uses.
  // The closure itself is released right after the final snapshot, so a
  // callback may safely capture the job's own ChartHandle (e.g. to
  // Cancel() from inside a snapshot) without keeping the job alive.
  OlaSnapshotCallback on_snapshot;
  double snapshot_period = 0.05;

  // Top-K chart serving (src/ola/topk.h): top_k.k > 0 tracks the K-th
  // displayed group's lower bound and (deadline mode, top_k.prune) skips
  // walks whose group can no longer enter the display. Budget-mode jobs
  // force prune off — pruning changes which walks complete, and a
  // budgeted estimate must stay a pure function of (query, seed, budget,
  // workers).
  TopKOptions top_k;
  // Deadline mode only: retire the job (as completed, with its partials)
  // as soon as the displayed chart converged, instead of walking to the
  // deadline. Requires top_k.k > 0.
  bool finish_on_displayed_convergence = false;
};

class ChartJob;  // internal to the serving core

// Shared-ownership view of a submitted job; copyable, outlives the core.
class ChartHandle {
 public:
  ChartHandle() = default;

  bool valid() const { return job_ != nullptr; }
  uint64_t id() const;
  ChartJobState state() const;
  bool finished() const;  // kDone or kCancelled

  // Merged live partials (published at quantum boundaries). Callable from
  // any thread, any number of times, also after the job finished.
  ParallelOlaResult Snapshot() const;

  // Requests cancellation. Running slots observe the token within one
  // walk quantum; the pool moves on to other jobs without joining or
  // respawning any thread. Idempotent; no-op on finished jobs.
  void Cancel() const;

  // Requests a graceful finish: stop walking within one quantum (same
  // pool mechanics as Cancel) but retire the job as COMPLETED with the
  // partials accumulated so far. The natural way to end a deadline-mode
  // chart whose display has converged — the user got their answer; the
  // job did not fail. Idempotent; no-op on finished jobs.
  void Finish() const;

  // Blocks until the job is done or cancelled; returns the final merged
  // result (partial up to the cancellation point for cancelled jobs).
  // Returned by value so `core.Submit(...).Await()` stays safe when the
  // temporary handle is the job's last owner.
  ParallelOlaResult Await() const;

  // Final per-slot estimates in slot order, retained at retirement. A
  // scatter-gather over several jobs (src/shard/coordinator.h) must fold
  // ALL logical slots of the combined run in global slot order — folding
  // pre-merged per-job results would re-associate the floating-point
  // summation and break budget-mode bit-identity. Slots that never ran
  // (zero budget share) yield empty estimates, so the fold skips them
  // exactly. Only callable once finished().
  std::vector<GroupedEstimates> SlotPartials() const;

 private:
  friend class ServingCore;
  explicit ChartHandle(std::shared_ptr<ChartJob> job);
  std::shared_ptr<ChartJob> job_;
};

// Point-in-time serving statistics (cumulative since core construction).
struct ServeStats {
  uint64_t threads = 0;          // pool size; fixed for the core's lifetime
  uint64_t jobs_submitted = 0;
  uint64_t jobs_completed = 0;
  uint64_t jobs_cancelled = 0;
  uint64_t quanta = 0;           // time slices executed
  uint64_t preemptions = 0;      // quanta where a worker switched jobs
  uint64_t walks = 0;            // walk-quanta executed across all jobs
  uint64_t live_jobs = 0;        // queued + running right now
  uint64_t max_live_jobs = 0;
  uint64_t tasks_run = 0;        // background tasks executed (SubmitTask)
  // Cancel() -> job-retired latency of the most recent cancellation.
  double last_cancel_latency_seconds = 0;
};

// The long-lived worker pool. Threads are spawned once in the constructor
// and joined once in the destructor; every chart served in between is a
// job on the shared queue.
class ServingCore {
 public:
  struct Options {
    int threads = 2;
    // Walk-quanta per time slice: the preemption and cancellation
    // granularity. Smaller = fairer + faster cancel, larger = less
    // scheduling overhead.
    uint64_t quantum_walks = 256;
  };

  // Serves `snapshot`'s version by default; jobs may pin a different
  // version via ChartJobOptions::snapshot.
  ServingCore(GraphSnapshot snapshot, Options options);
  // Legacy adapters: wrap externally owned indexes (which must outlive
  // the core AND every outstanding job) in an epoch-0 unowned snapshot.
  explicit ServingCore(const IndexSet& indexes);
  ServingCore(const IndexSet& indexes, Options options);
  // Cancels all live jobs (waking their Await-ers), joins the pool, then
  // runs any still-queued background tasks inline (a submitted task —
  // e.g. a pending compaction — always executes).
  ~ServingCore();

  ServingCore(const ServingCore&) = delete;
  ServingCore& operator=(const ServingCore&) = delete;

  // Enqueues a job; the query is copied. Thread-safe.
  ChartHandle Submit(const ChainQuery& query, ChartJobOptions options);

  // Enqueues a background task (e.g. MutableGraph compaction) on the
  // pool. Chart quanta take precedence: a worker only picks a task up
  // when no chart work is runnable. Thread-safe; tasks submitted before
  // destruction are guaranteed to run (inline in the destructor if the
  // pool never got to them).
  void SubmitTask(std::function<void()> task);

  ServeStats stats() const;
  const Options& options() const { return options_; }
  const GraphSnapshot& default_snapshot() const { return default_snapshot_; }

  struct State;  // opaque scheduler state, defined in parallel.cc

 private:
  void WorkerMain();

  GraphSnapshot default_snapshot_;
  Options options_;
  // Scheduler state shared with jobs (kept alive by outstanding handles,
  // so a handle may outlive the core).
  std::shared_ptr<State> state_;
  // kgoa-lint: allow(raw-thread) the serving pool itself
  std::vector<std::thread> pool_;
};

// ---------------------------------------------------------------------------
// Synchronous executor API (one job at a time on a private pool)
// ---------------------------------------------------------------------------

class ParallelOlaExecutor {
 public:
  // The indexes must outlive the executor; the query is copied.
  ParallelOlaExecutor(const IndexSet& indexes, ChainQuery query,
                      ParallelOlaOptions options);
  // Pins `snapshot` for the executor's lifetime; every Run call reads it.
  ParallelOlaExecutor(GraphSnapshot snapshot, ChainQuery query,
                      ParallelOlaOptions options);
  ~ParallelOlaExecutor();

  // Deadline mode: runs until `seconds` of wall clock elapse, measured
  // from the submit. One logical worker per pool thread.
  ParallelOlaResult RunForDuration(
      double seconds, const OlaSnapshotCallback& callback = nullptr) const;

  // Deterministic walk-budget mode: exactly `total_walks` walks split
  // across options.workers logical workers (worker w runs
  // total/workers walks, +1 for the first total%workers workers, with
  // seed seed + w), merged in worker order.
  ParallelOlaResult RunWalkBudget(
      uint64_t total_walks,
      const OlaSnapshotCallback& callback = nullptr) const;

  const ParallelOlaOptions& options() const { return options_; }

 private:
  ChartJobOptions BaseJobOptions() const;
  ServingCore& Core() const;

  GraphSnapshot snapshot_;
  ChainQuery query_;
  ParallelOlaOptions options_;
  // Run-shared reach cache (audit + distinct + share_reach): the plan is
  // compiled against query_ so the cache's memo keys stay valid for the
  // executor's whole lifetime — it stays warm across successive Run calls.
  // Null when options_.shared_reach supplies an external cache instead.
  std::unique_ptr<WalkPlan> shared_plan_;
  std::unique_ptr<ReachProbability> owned_shared_reach_;
  ReachProbability* shared_reach_ = nullptr;  // effective cache, may be null
  // The private pool, spawned on the first Run call and reused by every
  // later one — no per-serve thread construction. Run* calls are const
  // and thread-safe, so the lazy construction is guarded (Core()).
  mutable Mutex core_mutex_;
  mutable std::unique_ptr<ServingCore> core_ KGOA_GUARDED_BY(core_mutex_);
};

// Legacy wrapper: deadline mode, estimates only.
GroupedEstimates RunParallelOla(const IndexSet& indexes,
                                const ChainQuery& query,
                                const ParallelOlaOptions& options,
                                double seconds);

}  // namespace kgoa

#endif  // KGOA_OLA_PARALLEL_H_
