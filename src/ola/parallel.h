// Parallel online aggregation: a reusable worker-pool executor.
//
// The OLA literature the paper surveys (section II) includes parallel and
// distributed variants (PF-OLA, online aggregation for MapReduce). Both
// Wander Join and Audit Join parallelize embarrassingly: walks are i.i.d.,
// the indexes are immutable, and every engine-local cache (CTJ suffix
// counts, reach probabilities) is private to its worker — so independent
// workers with distinct seeds can simply merge their accumulators
// (GroupedEstimates::Merge) and the combined estimator is the same as one
// sequential run with the union of the walks.
//
// One caveat, worth stating because it is another argument for Audit
// Join's estimator design: Wander Join's DISTINCT mode is *stateful* (the
// Ripple-Join seen-set), so parallel workers each keep their own seen-set
// and duplicates across workers are double-counted — the merged estimate
// is even more biased than the sequential one. Audit Join's distinct
// estimator is stateless and merges exactly.
//
// The executor supports two run modes:
//
//  * Walk-budget mode (RunWalkBudget): the total budget is split across a
//    fixed number of *logical workers*, each with its own engine seeded
//    seed + w, and the final partials are merged in worker order. The
//    result is a deterministic function of (query, seed, budget,
//    options.workers) — bit-identical across runs and across `threads`
//    values, because `threads` only controls how many logical workers run
//    concurrently, never how the walks are partitioned or merged.
//
//  * Deadline mode (RunForDuration): workers run until a shared deadline
//    computed *before* the threads are spawned (so spawn latency counts
//    against the budget, not on top of it). Walk counts — and therefore
//    estimates — vary run to run; this is the interactive serving mode.
//
// In both modes, workers publish partial accumulators under a per-worker
// mutex every `publish_every` walks, and the calling thread (woken by
// condition_variable::wait_until, no busy-sleep) merges the published
// partials and hands a live snapshot — merged estimates with per-group CI
// half-widths, walks/sec, rejection rate, engine counters — to an optional
// callback at `snapshot_period` cadence, without stopping the run. This is
// the "watch the bars converge" interaction online aggregation exists for.
#ifndef KGOA_OLA_PARALLEL_H_
#define KGOA_OLA_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/index/index_set.h"
#include "src/ola/estimator.h"
#include "src/query/chain_query.h"

namespace kgoa {

class ReachProbability;
class WalkPlan;

// Per-engine work counters, merged across workers. Counters an engine does
// not track stay zero (e.g. tipping counters under Wander Join).
//
// The reach_* counters describe the reach-probability cache of the
// distinct estimator. With a shared cache they are filled once per run by
// the executor (as this run's delta over the cache's atomic shard
// counters) rather than per worker; they are exact totals but
// scheduling-dependent — see src/core/reach.h — so they are excluded from
// the walk-budget determinism contract.
struct OlaCounters {
  uint64_t tipped_walks = 0;     // Audit Join: walks finished by tipping
  uint64_t full_walks = 0;       // walks sampled to completion
  uint64_t tip_aborts = 0;       // Audit Join: enumeration-cap aborts
  uint64_t ctj_cache_hits = 0;   // Audit Join: suffix-count memo hits
  uint64_t duplicate_walks = 0;  // Wander Join distinct mode
  uint64_t reach_hits = 0;       // reach cache: memoized lookups served
  uint64_t reach_misses = 0;     // reach cache: entries computed
  uint64_t reach_contention = 0;  // reach cache: contended shard inserts
  uint64_t reach_entries = 0;     // reach cache: resident entries (gauge)

  void Merge(const OlaCounters& other) {
    tipped_walks += other.tipped_walks;
    full_walks += other.full_walks;
    tip_aborts += other.tip_aborts;
    ctj_cache_hits += other.ctj_cache_hits;
    duplicate_walks += other.duplicate_walks;
    reach_hits += other.reach_hits;
    reach_misses += other.reach_misses;
    reach_contention += other.reach_contention;
    // A gauge, not a rate: max keeps the merged value meaningful whether
    // the workers shared one cache or owned private ones.
    reach_entries = reach_entries > other.reach_entries
                        ? reach_entries
                        : other.reach_entries;
  }
};

struct ParallelOlaOptions {
  // OS threads actually running workers. Never affects budget-mode
  // results; clamped to [1, workers] in budget mode.
  int threads = 2;
  uint64_t seed = 1;             // logical worker w uses seed + w
  bool use_audit = true;         // Audit Join (false: Wander Join)
  std::vector<int> walk_order;   // empty = engine default
  double tipping_threshold = 64.0;  // Audit Join only

  // Budget mode: number of logical workers the budget is split across.
  // Part of the deterministic run identity — changing it changes the
  // estimate (like changing the seed), whereas changing `threads` never
  // does.
  int workers = 4;

  // Walks a worker runs between partial publications (and between
  // deadline checks in deadline mode).
  uint64_t publish_every = 256;

  // Seconds between snapshot callbacks (when a callback is given).
  double snapshot_period = 0.05;

  // Audit Join distinct mode: share ONE reach-probability cache across
  // every worker of a run, so each distinct (a, b) pair is audited once
  // per run instead of once per thread. Sharing preserves the
  // walk-budget bit-identity guarantee (memo values are pure functions of
  // the plan, so insert races are benign — src/core/reach.h); only the
  // cache counters become scheduling-dependent.
  bool share_reach = true;

  // Optional externally owned cache (e.g. an exploration session reusing
  // audits across queries on the same walk plan — src/explore/cache.h).
  // Must match this run's (query, walk order) and outlive the executor;
  // takes precedence over share_reach's per-run cache.
  ReachProbability* shared_reach = nullptr;
};

// A live view of the merged run state, valid only during the callback.
struct OlaSnapshot {
  double elapsed_seconds = 0;
  uint64_t walks = 0;
  uint64_t rejected_walks = 0;
  double walks_per_second = 0;
  double rejection_rate = 0;
  OlaCounters counters;
  // Merged partial estimates: per-group Estimate() / CiHalfWidth().
  // Owned by the executor; do not retain past the callback.
  const GroupedEstimates* estimates = nullptr;
  // True for the one snapshot emitted after all workers finished.
  bool final_snapshot = false;
};

// Called on the thread that invoked the run, never concurrently.
using OlaSnapshotCallback = std::function<void(const OlaSnapshot&)>;

struct ParallelOlaResult {
  GroupedEstimates estimates;
  OlaCounters counters;
  double elapsed_seconds = 0;
  int workers = 0;  // logical workers that ran
};

class ParallelOlaExecutor {
 public:
  // The indexes must outlive the executor; the query is copied.
  ParallelOlaExecutor(const IndexSet& indexes, ChainQuery query,
                      ParallelOlaOptions options);
  ~ParallelOlaExecutor();

  // Deadline mode: runs until `seconds` of wall clock elapse, measured
  // from before the workers are spawned. One logical worker per thread.
  ParallelOlaResult RunForDuration(
      double seconds, const OlaSnapshotCallback& callback = nullptr) const;

  // Deterministic walk-budget mode: exactly `total_walks` walks split
  // across options.workers logical workers (worker w runs
  // total/workers walks, +1 for the first total%workers workers, with
  // seed seed + w), merged in worker order.
  ParallelOlaResult RunWalkBudget(
      uint64_t total_walks,
      const OlaSnapshotCallback& callback = nullptr) const;

  const ParallelOlaOptions& options() const { return options_; }

 private:
  const IndexSet& indexes_;
  ChainQuery query_;
  ParallelOlaOptions options_;
  // Run-shared reach cache (audit + distinct + share_reach): the plan is
  // compiled against query_ so the cache's memo keys stay valid for the
  // executor's whole lifetime — it stays warm across successive Run calls.
  // Null when options_.shared_reach supplies an external cache instead.
  std::unique_ptr<WalkPlan> shared_plan_;
  std::unique_ptr<ReachProbability> owned_shared_reach_;
  ReachProbability* shared_reach_ = nullptr;  // effective cache, may be null
};

// Legacy wrapper: deadline mode, estimates only.
GroupedEstimates RunParallelOla(const IndexSet& indexes,
                                const ChainQuery& query,
                                const ParallelOlaOptions& options,
                                double seconds);

}  // namespace kgoa

#endif  // KGOA_OLA_PARALLEL_H_
