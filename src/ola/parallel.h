// Parallel online aggregation.
//
// The OLA literature the paper surveys (section II) includes parallel and
// distributed variants (PF-OLA, online aggregation for MapReduce). Both
// Wander Join and Audit Join parallelize embarrassingly: walks are i.i.d.,
// the indexes are immutable, and every engine-local cache (CTJ suffix
// counts, reach probabilities) is private to its worker — so independent
// workers with distinct seeds can simply merge their accumulators
// (GroupedEstimates::Merge) and the combined estimator is the same as one
// sequential run with the union of the walks.
//
// One caveat, worth stating because it is another argument for Audit
// Join's estimator design: Wander Join's DISTINCT mode is *stateful* (the
// Ripple-Join seen-set), so parallel workers each keep their own seen-set
// and duplicates across workers are double-counted — the merged estimate
// is even more biased than the sequential one. Audit Join's distinct
// estimator is stateless and merges exactly.
#ifndef KGOA_OLA_PARALLEL_H_
#define KGOA_OLA_PARALLEL_H_

#include <cstdint>
#include <vector>

#include "src/index/index_set.h"
#include "src/ola/estimator.h"
#include "src/query/chain_query.h"

namespace kgoa {

struct ParallelOlaOptions {
  int threads = 2;
  uint64_t seed = 1;             // worker w uses seed + w
  bool use_audit = true;         // Audit Join (false: Wander Join)
  std::vector<int> walk_order;   // empty = engine default
  double tipping_threshold = 64.0;  // Audit Join only
};

// Runs `seconds` of wall-clock online aggregation across worker threads
// and returns the merged estimates. Total walks scale with the number of
// workers (on real hardware; on a single core the benefit is overlap with
// other work).
GroupedEstimates RunParallelOla(const IndexSet& indexes,
                                const ChainQuery& query,
                                const ParallelOlaOptions& options,
                                double seconds);

}  // namespace kgoa

#endif  // KGOA_OLA_PARALLEL_H_
