#include "src/ola/parallel.h"

#include <atomic>
#include <memory>
#include <thread>

#include "src/core/audit.h"
#include "src/ola/wander.h"
#include "src/util/check.h"
#include "src/util/stopwatch.h"

namespace kgoa {

GroupedEstimates RunParallelOla(const IndexSet& indexes,
                                const ChainQuery& query,
                                const ParallelOlaOptions& options,
                                double seconds) {
  KGOA_CHECK(options.threads >= 1);
  std::atomic<bool> stop{false};
  std::vector<GroupedEstimates> partials(options.threads);

  auto worker = [&](int w) {
    const uint64_t seed = options.seed + static_cast<uint64_t>(w);
    if (options.use_audit) {
      AuditJoin::Options aj;
      aj.seed = seed;
      aj.walk_order = options.walk_order;
      aj.tipping_threshold = options.tipping_threshold;
      AuditJoin engine(indexes, query, aj);
      while (!stop.load(std::memory_order_relaxed)) {
        engine.RunWalks(64);
      }
      partials[w] = engine.estimates();
    } else {
      WanderJoin::Options wj;
      wj.seed = seed;
      wj.walk_order = options.walk_order;
      WanderJoin engine(indexes, query, wj);
      while (!stop.load(std::memory_order_relaxed)) {
        engine.RunWalks(64);
      }
      partials[w] = engine.estimates();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(options.threads);
  for (int w = 0; w < options.threads; ++w) {
    threads.emplace_back(worker, w);
  }
  Stopwatch clock;
  while (clock.ElapsedSeconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : threads) thread.join();

  GroupedEstimates merged;
  for (const GroupedEstimates& partial : partials) merged.Merge(partial);
  return merged;
}

}  // namespace kgoa
