#include "src/ola/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <thread>
#include <utility>

#include "src/core/reach.h"
#include "src/ola/walk_plan.h"
#include "src/util/contract.h"
#include "src/util/stopwatch.h"
#include "src/util/sync.h"

namespace kgoa {

using SteadyClock = std::chrono::steady_clock;

namespace {

SteadyClock::duration SecondsToDuration(double seconds) {
  return std::chrono::duration_cast<SteadyClock::duration>(
      std::chrono::duration<double>(seconds));
}

double DurationSeconds(SteadyClock::duration d) {
  return std::chrono::duration<double>(d).count();
}

void FillRates(double elapsed_seconds, OlaSnapshot& snapshot) {
  snapshot.elapsed_seconds = elapsed_seconds;
  snapshot.walks_per_second =
      elapsed_seconds > 0
          ? static_cast<double>(snapshot.walks) / elapsed_seconds
          : 0.0;
}

OlaSnapshot FinalSnapshot(const ParallelOlaResult& result) {
  OlaSnapshot snapshot;
  snapshot.walks = result.estimates.walks();
  snapshot.rejected_walks = result.estimates.rejected_walks();
  snapshot.rejection_rate = result.estimates.RejectionRate();
  snapshot.counters = result.counters;
  snapshot.estimates = &result.estimates;
  snapshot.displayed_converged = result.displayed_converged;
  snapshot.final_snapshot = true;
  FillRates(result.elapsed_seconds, snapshot);
  return snapshot;
}

// Seconds between top-K tracker refreshes. The refresh is a slot-order
// merge (same cost as a snapshot); pacing it faster than the display
// cadence lets pruning kick in early without re-merging every quantum.
constexpr double kTopKRefreshPeriod = 0.01;

TopKOptions EffectiveTopK(const ChartJobOptions& options) {
  TopKOptions topk = options.top_k;
  // Pruning changes which walks complete; a budget-mode estimate must
  // stay a pure function of (query, seed, budget, workers), so the
  // tracker runs observe-only there (bounds and convergence signal, no
  // filter).
  if (options.walk_budget > 0) topk.prune = false;
  return topk;
}

}  // namespace

const char* ChartJobStateName(ChartJobState state) {
  switch (state) {
    case ChartJobState::kQueued:
      return "queued";
    case ChartJobState::kRunning:
      return "running";
    case ChartJobState::kDone:
      return "done";
    case ChartJobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Scheduler state (shared between the core, its workers, and every job, so
// a ChartHandle stays functional even after the core is destroyed).
// ---------------------------------------------------------------------------

// Capability model (see DESIGN.md §11): `mutex` is the scheduler lock. It
// guards every field below AND the cross-object scheduling fields of every
// live ChartJob (queue membership, slot checkout bits, the retire claim).
// It is only ever held for O(live jobs) bookkeeping — never across a walk
// quantum, a final merge, or a user callback.
struct ServingCore::State {
  explicit State(Options opts) : options(opts) {}

  const Options options;

  Mutex mutex;
  CondVar cv;  // signalled on new work and on shutdown
  bool stopping KGOA_GUARDED_BY(mutex) = false;
  // Jobs with at least one slot a worker could pick up right now. A job is
  // re-pushed to the back after every quantum, so equal-priority jobs
  // share the pool round-robin.
  std::deque<std::shared_ptr<ChartJob>> queue KGOA_GUARDED_BY(mutex);
  // Every unretired job (queued, running, or fully checked out).
  std::vector<std::shared_ptr<ChartJob>> live KGOA_GUARDED_BY(mutex);
  // Background tasks (compaction folds). Chart quanta take precedence: a
  // worker only pops a task when PickWork finds nothing runnable.
  std::deque<std::function<void()>> tasks KGOA_GUARDED_BY(mutex);
  uint64_t tasks_run KGOA_GUARDED_BY(mutex) = 0;

  uint64_t next_job_id KGOA_GUARDED_BY(mutex) = 1;
  uint64_t submitted KGOA_GUARDED_BY(mutex) = 0;
  uint64_t completed KGOA_GUARDED_BY(mutex) = 0;
  uint64_t cancelled KGOA_GUARDED_BY(mutex) = 0;
  uint64_t quanta KGOA_GUARDED_BY(mutex) = 0;
  uint64_t preemptions KGOA_GUARDED_BY(mutex) = 0;
  uint64_t walks KGOA_GUARDED_BY(mutex) = 0;
  uint64_t max_live KGOA_GUARDED_BY(mutex) = 0;
  double last_cancel_latency KGOA_GUARDED_BY(mutex) = 0;
};

// ---------------------------------------------------------------------------
// ChartJob
// ---------------------------------------------------------------------------

// Locking map. A job is touched by four mutexes, never nested:
//
//   core->mutex      all scheduling fields: slots' checked_out/exhausted/
//                    done/share, checked_out, active_slots, in_queue,
//                    retire_claimed, cancel_time. These are cross-object
//                    (the guarding mutex lives in the core's State), which
//                    clang TSA cannot express as a field annotation
//                    without aliasing false positives — so the discipline
//                    is enforced one level up: every helper that touches
//                    them carries KGOA_REQUIRES(state.mutex) and takes the
//                    State explicitly.
//   slot.publish_mutex   that slot's published partial/counters.
//   topk_mutex       top-K refresh pacing (tracker internals have their
//                    own lock — src/ola/topk.h).
//   done_mutex       result/final_partials publication + done_cv.
//   callback_mutex   snapshot-callback serialization + pacing tick.
//
// Engines are only touched by the single worker that checked the slot
// out, and by the one finalizing thread after every slot is exhausted and
// returned.
class ChartJob {
 public:
  // This run's view of a shared reach cache: counters are reported as the
  // delta over the cache's totals at submit, so a session-owned cache that
  // stays warm across jobs does not leak earlier jobs' activity into this
  // job's counters.
  struct ReachWindow {
    const ReachProbability* cache = nullptr;
    ShardedTableStats baseline;

    void Open(const ReachProbability* c) {
      cache = c;
      if (cache != nullptr) baseline = cache->stats();
    }

    void AddDelta(OlaCounters& counters) const {
      if (cache == nullptr) return;
      const ShardedTableStats now = cache->stats();
      counters.reach_hits += now.hits - baseline.hits;
      counters.reach_misses += now.misses - baseline.misses;
      counters.reach_contention +=
          now.insert_contention - baseline.insert_contention;
      counters.reach_entries = now.entries;
    }
  };

  // One logical worker: private engine, deterministic walk share.
  struct Slot {
    // Scheduling fields, guarded by the core State mutex (see class
    // comment for why that cannot be a guarded_by annotation).
    uint64_t share = 0;  // budget mode: walks this slot must run
    uint64_t done = 0;
    bool checked_out = false;
    bool exhausted = false;
    std::unique_ptr<OlaEngine> engine;  // built on first quantum
    // Published partials for live snapshots, refreshed every quantum.
    Mutex publish_mutex;
    GroupedEstimates partial KGOA_GUARDED_BY(publish_mutex);
    OlaCounters counters KGOA_GUARDED_BY(publish_mutex);
  };

  // options.snapshot must be valid (Submit resolves the core default
  // before constructing the job); the job pins it until destruction.
  ChartJob(std::shared_ptr<ServingCore::State> core_state,
           const ChainQuery& chart_query, ChartJobOptions job_options)
      : core(std::move(core_state)),
        query(chart_query),
        options(std::move(job_options)),
        budget_mode(options.walk_budget > 0),
        quantum(std::max<uint64_t>(1, core->options.quantum_walks)),
        topk(EffectiveTopK(options)) {
    KGOA_CHECK(options.snapshot.valid());
    engine_template.kind = options.engine;
    engine_template.walk_order = options.walk_order;
    engine_template.tipping_threshold = options.tipping_threshold;
    engine_template.batch_walks = options.batch_walks;

    // Non-mergeable engines (Ripple) run on exactly one logical worker:
    // their partials cannot be folded across independently seeded
    // instances (src/ola/engine.h).
    const bool mergeable = OlaEngineKindMergeable(options.engine);
    int workers = std::max(1, options.workers);
    if (!mergeable) workers = 1;

    // Only the audit engine's distinct estimator audits reach
    // probabilities; everything else runs cache-less.
    if (options.engine == OlaEngineKind::kAudit && query.distinct()) {
      if (options.shared_reach != nullptr) {
        shared_reach = options.shared_reach;
      } else if (options.share_reach) {
        owned_plan = std::make_unique<WalkPlan>(
            WalkPlan::Compile(query, options.walk_order));
        owned_reach = std::make_unique<ReachProbability>(
            options.snapshot.indexes(), *owned_plan);
        shared_reach = owned_reach.get();
      }
    }
    reach_window.Open(shared_reach);

    slots.resize(static_cast<std::size_t>(workers));
    if (budget_mode) {
      const uint64_t base = options.walk_budget /
                            static_cast<uint64_t>(workers);
      const uint64_t remainder = options.walk_budget %
                                 static_cast<uint64_t>(workers);
      for (int w = 0; w < workers; ++w) {
        Slot& slot = slots[static_cast<std::size_t>(w)];
        slot.share =
            base + (static_cast<uint64_t>(w) < remainder ? 1 : 0);
        if (slot.share == 0) slot.exhausted = true;  // never scheduled
      }
    }
    for (const Slot& slot : slots) {
      if (!slot.exhausted) ++active_slots;
    }
    KGOA_CHECK(active_slots > 0);
    deadline = SteadyClock::now() +
               SecondsToDuration(std::max(options.deadline_seconds, 0.0));
    next_tick = SteadyClock::now() +
                SecondsToDuration(std::max(options.snapshot_period, 1e-4));
    next_topk_tick = SteadyClock::now() +
                     SecondsToDuration(kTopKRefreshPeriod);
  }

  int ConcurrencyCap() const {
    const int n = static_cast<int>(slots.size());
    return options.max_concurrency > 0
               ? std::min(options.max_concurrency, n)
               : n;
  }

  std::shared_ptr<ServingCore::State> core;
  const ChainQuery query;
  // Fixed at submit, except on_snapshot: FinalizeJob clears the closure
  // after its last invocation (under callback_mutex) so captured state
  // (often the job's own handle) is released with the retirement.
  // options.snapshot pins this job's graph version (and
  // options.reach_keepalive its cache entry) until the job — and every
  // handle on it — is gone: engines, the owned reach cache and the final
  // merge all read through it, so a compaction publishing epoch N+1
  // mid-run never invalidates anything this job touches.
  ChartJobOptions options;
  const bool budget_mode;
  const uint64_t quantum;
  OlaEngineOptions engine_template;  // per-slot seed filled at checkout

  uint64_t id = 0;  // assigned under the core mutex at submit
  SteadyClock::time_point deadline{};
  Stopwatch clock;  // started at submit (construction)

  // Effective shared reach cache (may be null); owned when built per-job.
  std::unique_ptr<WalkPlan> owned_plan;
  std::unique_ptr<ReachProbability> owned_reach;
  ReachProbability* shared_reach = nullptr;
  ReachWindow reach_window;

  // Slots are fixed at construction; deque keeps Slot's mutex immovable.
  std::deque<Slot> slots;
  // Scheduling fields, guarded by the core State mutex (class comment).
  int active_slots = 0;  // slots not yet exhausted
  int checked_out = 0;
  bool in_queue = false;
  bool retire_claimed = false;
  SteadyClock::time_point cancel_time{};

  // The cancellation token: set once by Cancel(), observed by workers at
  // quantum boundaries without any lock.
  std::atomic<bool> cancel_requested{false};

  // The graceful-finish token: same stopping mechanics as the cancel
  // token, but the job retires as completed (with its partials) and the
  // budget walk-count contract is waived. Set by ChartHandle::Finish()
  // or, with finish_on_displayed_convergence, by the top-K refresh.
  std::atomic<bool> finish_requested{false};

  // Top-K serving state. The tracker is updated from merged partials
  // under topk_mutex (try-lock paced, like the snapshot callback);
  // engines pull immutable filter snapshots at quantum boundaries.
  TopKTracker topk;
  Mutex topk_mutex;
  SteadyClock::time_point next_topk_tick KGOA_GUARDED_BY(topk_mutex){};

  // Completion signalling; `result` and `final_partials` are written once
  // under done_mutex before `state` advances to kDone/kCancelled.
  mutable Mutex done_mutex;
  mutable CondVar done_cv;
  std::atomic<int> state{static_cast<int>(ChartJobState::kQueued)};
  ParallelOlaResult result KGOA_GUARDED_BY(done_mutex);
  // Per-slot final estimates in slot order (empty estimates for slots
  // that never built an engine), kept for scatter-gather slot-order folds
  // (ChartHandle::SlotPartials).
  std::vector<GroupedEstimates> final_partials KGOA_GUARDED_BY(done_mutex);

  // Snapshot-subscription pacing; callbacks are serialized per job.
  Mutex callback_mutex;
  SteadyClock::time_point next_tick KGOA_GUARDED_BY(callback_mutex){};
};

namespace {

ChartJobState JobState(const ChartJob& job) {
  return static_cast<ChartJobState>(
      job.state.load(std::memory_order_acquire));
}

bool JobFinished(const ChartJob& job) {
  const ChartJobState s = JobState(job);
  return s == ChartJobState::kDone || s == ChartJobState::kCancelled;
}

// Core-mutex-guarded: is there a slot a worker could pick up? The mutex
// lives in `state`, which must be `*job.core` (the REQUIRES annotation
// names the caller's State so TSA can match the held capability).
bool HasAvailableSlot(const ServingCore::State& state, const ChartJob& job)
    KGOA_REQUIRES(state.mutex) {
  (void)state;
  if (job.cancel_requested.load(std::memory_order_relaxed)) return false;
  if (job.finish_requested.load(std::memory_order_relaxed)) return false;
  if (job.checked_out >= job.ConcurrencyCap()) return false;
  for (const ChartJob::Slot& slot : job.slots) {
    if (!slot.exhausted && !slot.checked_out) return true;
  }
  return false;
}

int FirstAvailableSlot(const ServingCore::State& state, const ChartJob& job)
    KGOA_REQUIRES(state.mutex) {
  (void)state;
  for (std::size_t i = 0; i < job.slots.size(); ++i) {
    if (!job.slots[i].exhausted && !job.slots[i].checked_out) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

// Merges the published slot partials (slot order, so repeated snapshots of
// a quiescent job are bit-stable) and describes them.
OlaSnapshot MergeJobSnapshot(ChartJob& job, GroupedEstimates* merged) {
  OlaSnapshot snapshot;
  *merged = GroupedEstimates();
  for (ChartJob::Slot& slot : job.slots) {
    MutexLock lock(slot.publish_mutex);
    merged->Merge(slot.partial);
    snapshot.counters.Merge(slot.counters);
  }
  job.reach_window.AddDelta(snapshot.counters);
  snapshot.walks = merged->walks();
  snapshot.rejected_walks = merged->rejected_walks();
  snapshot.rejection_rate = merged->RejectionRate();
  snapshot.estimates = merged;
  snapshot.displayed_converged = job.topk.displayed_converged();
  FillRates(job.clock.ElapsedSeconds(), snapshot);
  return snapshot;
}

// Refreshes the top-K tracker from a fresh slot-order merge, paced like
// the snapshot callback (try-lock + tick: a sampled view, not a log).
// With finish_on_displayed_convergence the job self-finishes the moment
// the displayed chart settles — deadline mode only; a budget-mode job
// always runs its exact budget.
void MaybeRefreshTopK(ChartJob& job) {
  if (!job.topk.enabled()) return;
  if (!job.topk_mutex.TryLock()) return;
  MutexLock lock(job.topk_mutex, kAdoptLock);
  if (SteadyClock::now() < job.next_topk_tick) return;
  GroupedEstimates merged;
  MergeJobSnapshot(job, &merged);
  job.topk.Update(merged);
  job.next_topk_tick =
      SteadyClock::now() + SecondsToDuration(kTopKRefreshPeriod);
  if (!job.budget_mode && job.options.finish_on_displayed_convergence &&
      job.topk.displayed_converged()) {
    job.finish_requested.store(true, std::memory_order_release);
  }
}

// Delivers a paced live snapshot if the job subscribed and the period
// elapsed. Try-lock: if another worker is mid-callback, skip rather than
// queue up — snapshots are a sampled view, not a log. (The unlocked
// on_snapshot pre-check cannot race the closure release in FinalizeJob:
// this runs only from a checked-out slot's quantum, and FinalizeJob only
// after every slot was returned.)
void MaybeSnapshotCallback(ChartJob& job) {
  if (!job.options.on_snapshot) return;
  if (!job.callback_mutex.TryLock()) return;
  MutexLock lock(job.callback_mutex, kAdoptLock);
  if (SteadyClock::now() < job.next_tick) return;
  GroupedEstimates merged;
  const OlaSnapshot snapshot = MergeJobSnapshot(job, &merged);
  job.options.on_snapshot(snapshot);
  job.next_tick = SteadyClock::now() +
                  SecondsToDuration(std::max(job.options.snapshot_period,
                                             1e-4));
}

// Runs one time slice of `slot`: builds the engine on first touch, walks
// one quantum (clipped to the slot's remaining budget share), publishes
// the partial. Returns the walks run; 0 means the slot produced no work
// (cancelled, or the deadline passed) and should be exhausted. Runs with
// NO lock held — the slot is exclusively checked out to this worker.
uint64_t RunQuantum(ChartJob& job, int slot_index) {
  ChartJob::Slot& slot = job.slots[static_cast<std::size_t>(slot_index)];
  if (job.cancel_requested.load(std::memory_order_acquire)) return 0;
  if (job.finish_requested.load(std::memory_order_acquire)) return 0;
  if (!job.budget_mode && SteadyClock::now() >= job.deadline) return 0;

  if (slot.engine == nullptr) {
    OlaEngineOptions engine_options = job.engine_template;
    engine_options.seed =
        job.options.seed + static_cast<uint64_t>(slot_index);
    engine_options.shared_reach = job.shared_reach;
    slot.engine =
        MakeOlaEngine(job.options.snapshot.indexes(), job.query,
                      engine_options);
  }

  uint64_t walks = job.quantum;
  if (job.budget_mode) {
    KGOA_DCHECK(slot.done < slot.share);
    walks = std::min(walks, slot.share - slot.done);
  }
  if (job.topk.enabled()) {
    // Install the current prune set for this quantum. The snapshot is
    // immutable and slot-private for the quantum's duration; in budget
    // mode (or before anything is pruned) it is null, clearing any
    // previous filter.
    slot.engine->SetGroupFilter(job.topk.FilterSnapshot());
  }
  slot.engine->RunWalks(walks);

  // The copy reads only slot-private engine state; only the handoff into
  // the publish slot needs the lock.
  GroupedEstimates partial = slot.engine->estimates();
  OlaCounters counters;
  slot.engine->FillCounters(&counters);
  {
    MutexLock lock(slot.publish_mutex);
    slot.partial = std::move(partial);
    slot.counters = counters;
  }
  MaybeRefreshTopK(job);
  MaybeSnapshotCallback(job);
  return walks;
}

// Builds the final result (slot-order merge — the determinism contract),
// frees the engines, publishes the result, and wakes Await-ers. MUST run
// with the core mutex released (the merge is O(groups × slots) and the
// snapshot callback is user code): the caller first claims the retire
// under the core mutex (RetireJobLocked), then calls this outside it.
void FinalizeJob(ChartJob& job, bool cancelled)
    KGOA_EXCLUDES(job.core->mutex) {
  ParallelOlaResult result;
  result.workers = static_cast<int>(job.slots.size());
  bool mergeable = true;
  // Ordered merge over logical slots: the double summation happens in the
  // same order no matter how quanta were interleaved with other jobs or
  // scheduled onto threads, so the result is bit-identical across pool
  // sizes and across solo vs. concurrent serving. The per-slot finals are
  // retained (empty for never-run slots, keeping slot alignment) so a
  // scatter-gather across jobs can redo this fold in global slot order.
  std::vector<GroupedEstimates> final_partials(job.slots.size());
  for (std::size_t s = 0; s < job.slots.size(); ++s) {
    ChartJob::Slot& slot = job.slots[s];
    if (slot.engine == nullptr) continue;
    final_partials[s] = slot.engine->estimates();
    result.estimates.Merge(final_partials[s]);
    slot.engine->FillCounters(&result.counters);
    mergeable = mergeable && slot.engine->mergeable();
  }
  job.reach_window.AddDelta(result.counters);
  result.elapsed_seconds = job.clock.ElapsedSeconds();
  result.displayed_converged = job.topk.displayed_converged();
  if (job.budget_mode && !cancelled && mergeable &&
      !job.finish_requested.load(std::memory_order_acquire)) {
    // Walk-budget determinism: every slot ran exactly its share, so the
    // merged walk count must equal the requested budget regardless of how
    // the quanta were scheduled. (A graceful Finish() waives the
    // contract: the job completes with the walks it got to.)
    KGOA_DCHECK_EQ(result.estimates.walks(), job.options.walk_budget);
  }
  // Release the heavy engine state (estimator arenas, CTJ memos, private
  // reach caches) eagerly: a cancelled job must not keep partial engines
  // alive for as long as some handle holds the job.
  for (ChartJob::Slot& slot : job.slots) slot.engine.reset();

  // The final snapshot is delivered BEFORE the result is published and
  // Await-ers are woken: Await() returning guarantees the callback will
  // not fire again, so callers may tear down captured state right after.
  if (job.options.on_snapshot) {
    MutexLock lock(job.callback_mutex);
    job.options.on_snapshot(FinalSnapshot(result));
    // Drop the subscription once it can never fire again. Callbacks
    // routinely capture the job's own handle (e.g. to Cancel() from inside
    // a snapshot); keeping the closure alive would cycle
    // job -> callback -> handle -> job and leak the retired job.
    job.options.on_snapshot = nullptr;
  }
  {
    MutexLock lock(job.done_mutex);
    job.result = std::move(result);
    job.final_partials = std::move(final_partials);
    job.state.store(static_cast<int>(cancelled ? ChartJobState::kCancelled
                                               : ChartJobState::kDone),
                    std::memory_order_release);
  }
  job.done_cv.NotifyAll();
}

// Removes the job from the live set and settles the retirement stats. The
// caller has set job->retire_claimed and MUST call FinalizeJob(job,
// <return value>) after releasing the core mutex — the lock is never
// dropped here, so TSA can verify every caller's locking end to end.
// Returns whether the job retires as cancelled.
bool RetireJobLocked(ServingCore::State& state,
                     const std::shared_ptr<ChartJob>& job)
    KGOA_REQUIRES(state.mutex) {
  KGOA_DCHECK(job->retire_claimed);
  KGOA_DCHECK_EQ(job->checked_out, 0);
  state.live.erase(std::remove(state.live.begin(), state.live.end(), job),
                   state.live.end());
  const bool cancelled =
      job->cancel_requested.load(std::memory_order_acquire);
  // Stats are settled BEFORE the finalize wakes Await-ers, so a stats()
  // call racing an Await() return sees the job counted. The cancellation
  // latency is request -> pool freed (this claim), the quantity the
  // serving story cares about; the off-mutex final merge is excluded.
  if (cancelled) {
    ++state.cancelled;
    state.last_cancel_latency =
        DurationSeconds(SteadyClock::now() - job->cancel_time);
  } else {
    ++state.completed;
  }
  return cancelled;
}

// Picks the next (job, slot) to run: highest priority first, round-robin
// among equals (jobs are re-pushed to the back after each pick). Returns
// false when no work is available.
bool PickWork(ServingCore::State& state, std::shared_ptr<ChartJob>* out_job,
              int* out_slot) KGOA_REQUIRES(state.mutex) {
  std::size_t best = state.queue.size();
  for (std::size_t i = 0; i < state.queue.size();) {
    ChartJob& job = *state.queue[i];
    if (!HasAvailableSlot(state, job)) {
      // Stale entry (fully checked out, exhausted, or cancelled since it
      // was queued): drop it — workers returning slots re-queue jobs that
      // regain available work.
      job.in_queue = false;
      state.queue.erase(state.queue.begin() +
                        static_cast<std::ptrdiff_t>(i));
      continue;
    }
    if (best == state.queue.size() ||
        job.options.priority > state.queue[best]->options.priority) {
      best = i;
    }
    ++i;
  }
  if (best == state.queue.size()) return false;

  std::shared_ptr<ChartJob> job = state.queue[best];
  const int slot = FirstAvailableSlot(state, *job);
  KGOA_DCHECK(slot >= 0);
  job->slots[static_cast<std::size_t>(slot)].checked_out = true;
  ++job->checked_out;
  job->state.store(static_cast<int>(ChartJobState::kRunning),
                   std::memory_order_release);
  // Rotate: whatever happens to this job, it goes to the back (or out) of
  // the queue, so its peers get the next slices.
  state.queue.erase(state.queue.begin() +
                    static_cast<std::ptrdiff_t>(best));
  if (HasAvailableSlot(state, *job)) {
    state.queue.push_back(job);
  } else {
    job->in_queue = false;
  }
  *out_job = std::move(job);
  *out_slot = slot;
  return true;
}

// Returns a slot after a quantum: updates progress, exhausts finished
// slots, and either claims the retirement or re-queues the job. When the
// return value's `finalize` is set, the caller must release the core
// mutex and run FinalizeJob(job, .cancelled).
struct RetireAction {
  bool finalize = false;
  bool cancelled = false;
};

RetireAction ReturnSlot(ServingCore::State& state,
                        const std::shared_ptr<ChartJob>& job, int slot_index,
                        uint64_t ran) KGOA_REQUIRES(state.mutex) {
  ChartJob::Slot& slot = job->slots[static_cast<std::size_t>(slot_index)];
  slot.checked_out = false;
  --job->checked_out;
  slot.done += ran;

  auto exhaust = [&](ChartJob::Slot& s) {
    if (!s.exhausted) {
      s.exhausted = true;
      --job->active_slots;
    }
  };
  if (job->cancel_requested.load(std::memory_order_relaxed) ||
      job->finish_requested.load(std::memory_order_relaxed)) {
    // A stop token was observed: everything not currently running stops
    // now; running slots stop as their quanta return. (RetireJobLocked
    // decides completed-vs-cancelled from the cancel token alone, so a
    // finish retires as completed.)
    for (ChartJob::Slot& s : job->slots) {
      if (!s.checked_out) exhaust(s);
    }
  } else if (job->budget_mode) {
    if (slot.done >= slot.share) exhaust(slot);
  } else if (ran == 0) {
    // Deadline passed: this slot is done; its siblings notice on their own
    // next quantum.
    exhaust(slot);
  }

  RetireAction action;
  if (job->active_slots == 0 && job->checked_out == 0) {
    if (!job->retire_claimed) {
      job->retire_claimed = true;
      action.finalize = true;
      action.cancelled = RetireJobLocked(state, job);
    }
  } else if (!job->in_queue && HasAvailableSlot(state, *job)) {
    job->in_queue = true;
    state.queue.push_back(job);
    state.cv.NotifyAll();
  }
  return action;
}

}  // namespace

// ---------------------------------------------------------------------------
// ChartHandle
// ---------------------------------------------------------------------------

ChartHandle::ChartHandle(std::shared_ptr<ChartJob> job)
    : job_(std::move(job)) {}

uint64_t ChartHandle::id() const { return job_ == nullptr ? 0 : job_->id; }

ChartJobState ChartHandle::state() const {
  KGOA_CHECK(job_ != nullptr);
  return JobState(*job_);
}

bool ChartHandle::finished() const {
  return job_ != nullptr && JobFinished(*job_);
}

ParallelOlaResult ChartHandle::Snapshot() const {
  KGOA_CHECK(job_ != nullptr);
  if (JobFinished(*job_)) {
    MutexLock lock(job_->done_mutex);
    return job_->result;
  }
  ParallelOlaResult live;
  live.workers = static_cast<int>(job_->slots.size());
  GroupedEstimates merged;
  const OlaSnapshot snapshot = MergeJobSnapshot(*job_, &merged);
  live.estimates = std::move(merged);
  live.counters = snapshot.counters;
  live.elapsed_seconds = snapshot.elapsed_seconds;
  live.displayed_converged = snapshot.displayed_converged;
  return live;
}

void ChartHandle::Cancel() const {
  KGOA_CHECK(job_ != nullptr);
  const std::shared_ptr<ServingCore::State> shared_state = job_->core;
  ServingCore::State& state = *shared_state;
  bool finalize = false;
  bool cancelled = false;
  {
    MutexLock lock(state.mutex);
    if (JobFinished(*job_) || job_->retire_claimed) return;
    if (!job_->cancel_requested.exchange(true,
                                         std::memory_order_acq_rel)) {
      job_->cancel_time = SteadyClock::now();
    }
    if (job_->in_queue) {
      job_->in_queue = false;
      state.queue.erase(std::remove(state.queue.begin(), state.queue.end(),
                                    job_),
                        state.queue.end());
    }
    for (ChartJob::Slot& slot : job_->slots) {
      if (!slot.checked_out && !slot.exhausted) {
        slot.exhausted = true;
        --job_->active_slots;
      }
    }
    if (job_->checked_out == 0) {
      // Nothing of this job is running: retire it inline; the pool never
      // even has to wake up. Otherwise the workers holding its slots
      // observe the token within one quantum and the last one to return
      // retires it.
      job_->retire_claimed = true;
      finalize = true;
      cancelled = RetireJobLocked(state, job_);
    }
  }
  if (finalize) FinalizeJob(*job_, cancelled);
}

void ChartHandle::Finish() const {
  KGOA_CHECK(job_ != nullptr);
  const std::shared_ptr<ServingCore::State> shared_state = job_->core;
  ServingCore::State& state = *shared_state;
  bool finalize = false;
  bool cancelled = false;
  {
    MutexLock lock(state.mutex);
    if (JobFinished(*job_) || job_->retire_claimed) return;
    // Same stopping mechanics as Cancel(), without the cancel token:
    // RetireJobLocked classifies by cancel_requested, so the job counts
    // as completed and keeps its partials as the final result.
    job_->finish_requested.store(true, std::memory_order_release);
    if (job_->in_queue) {
      job_->in_queue = false;
      state.queue.erase(std::remove(state.queue.begin(), state.queue.end(),
                                    job_),
                        state.queue.end());
    }
    for (ChartJob::Slot& slot : job_->slots) {
      if (!slot.checked_out && !slot.exhausted) {
        slot.exhausted = true;
        --job_->active_slots;
      }
    }
    if (job_->checked_out == 0) {
      job_->retire_claimed = true;
      finalize = true;
      cancelled = RetireJobLocked(state, job_);
    }
  }
  if (finalize) FinalizeJob(*job_, cancelled);
}

ParallelOlaResult ChartHandle::Await() const {
  KGOA_CHECK(job_ != nullptr);
  MutexLock lock(job_->done_mutex);
  // The predicate reads only the job's atomic state — no guarded fields.
  job_->done_cv.Wait(job_->done_mutex, [&] { return JobFinished(*job_); });
  return job_->result;
}

std::vector<GroupedEstimates> ChartHandle::SlotPartials() const {
  KGOA_CHECK(job_ != nullptr);
  KGOA_CHECK_MSG(JobFinished(*job_),
                 "SlotPartials is only valid once the job finished");
  MutexLock lock(job_->done_mutex);
  return job_->final_partials;
}

// ---------------------------------------------------------------------------
// ServingCore
// ---------------------------------------------------------------------------

ServingCore::ServingCore(const IndexSet& indexes)
    : ServingCore(GraphSnapshot::Unowned(indexes), Options()) {}

ServingCore::ServingCore(const IndexSet& indexes, Options options)
    : ServingCore(GraphSnapshot::Unowned(indexes), options) {}

ServingCore::ServingCore(GraphSnapshot snapshot, Options options)
    : default_snapshot_(std::move(snapshot)), options_(options) {
  KGOA_CHECK(default_snapshot_.valid());
  KGOA_CHECK(options_.threads >= 1);
  KGOA_CHECK(options_.quantum_walks >= 1);
  state_ = std::make_shared<State>(options_);
  // The one place in the repo that constructs OS threads (lint rule
  // raw-thread): the pool outlives every chart served through it.
  pool_.reserve(static_cast<std::size_t>(options_.threads));
  for (int t = 0; t < options_.threads; ++t) {
    pool_.emplace_back([this] { WorkerMain(); });
  }
}

ServingCore::~ServingCore() {
  State& state = *state_;
  {
    MutexLock lock(state.mutex);
    state.stopping = true;
  }
  state.cv.NotifyAll();
  for (std::thread& thread : pool_) thread.join();
  // The workers are gone, so nothing is checked out: flush every live job
  // as cancelled so Await-ers (possibly on other threads, holding handles
  // that outlive this core) wake with a well-formed partial result. The
  // bookkeeping happens under the mutex; the final merges after it (the
  // lock-order rule: never finalize — user callbacks! — under the
  // scheduler lock).
  std::vector<std::shared_ptr<ChartJob>> to_finalize;
  {
    MutexLock lock(state.mutex);
    while (!state.live.empty()) {
      std::shared_ptr<ChartJob> job = state.live.back();
      if (!job->cancel_requested.exchange(true,
                                          std::memory_order_acq_rel)) {
        job->cancel_time = SteadyClock::now();
      }
      job->in_queue = false;
      for (ChartJob::Slot& slot : job->slots) {
        if (!slot.exhausted) {
          slot.exhausted = true;
          --job->active_slots;
        }
      }
      KGOA_CHECK(!job->retire_claimed);
      job->retire_claimed = true;
      RetireJobLocked(state, job);
      to_finalize.push_back(std::move(job));
    }
    state.queue.clear();
  }
  for (const std::shared_ptr<ChartJob>& job : to_finalize) {
    FinalizeJob(*job, /*cancelled=*/true);
  }
  // A submitted task always runs: drain whatever the pool never got to,
  // inline, after the workers are gone (a compaction scheduled right
  // before teardown must still fold and publish).
  std::deque<std::function<void()>> leftover;
  {
    MutexLock lock(state.mutex);
    leftover.swap(state.tasks);
    state.tasks_run += leftover.size();
  }
  for (const std::function<void()>& task : leftover) task();
}

ChartHandle ServingCore::Submit(const ChainQuery& query,
                                ChartJobOptions options) {
  if (!options.snapshot.valid()) options.snapshot = default_snapshot_;
  auto job = std::make_shared<ChartJob>(state_, query, std::move(options));
  State& state = *state_;
  MutexLock lock(state.mutex);
  KGOA_CHECK_MSG(!state.stopping, "Submit on a stopping ServingCore");
  job->id = state.next_job_id++;
  ++state.submitted;
  state.live.push_back(job);
  job->in_queue = true;
  state.queue.push_back(job);
  state.max_live = std::max<uint64_t>(state.max_live, state.live.size());
  state.cv.NotifyAll();
  return ChartHandle(std::move(job));
}

void ServingCore::SubmitTask(std::function<void()> task) {
  KGOA_CHECK(task != nullptr);
  State& state = *state_;
  {
    MutexLock lock(state.mutex);
    KGOA_CHECK_MSG(!state.stopping, "SubmitTask on a stopping ServingCore");
    state.tasks.push_back(std::move(task));
  }
  state.cv.NotifyAll();
}

ServeStats ServingCore::stats() const {
  ServeStats stats;
  State& state = *state_;
  MutexLock lock(state.mutex);
  stats.threads = pool_.size();
  stats.jobs_submitted = state.submitted;
  stats.jobs_completed = state.completed;
  stats.jobs_cancelled = state.cancelled;
  stats.quanta = state.quanta;
  stats.preemptions = state.preemptions;
  stats.walks = state.walks;
  stats.live_jobs = state.live.size();
  stats.max_live_jobs = state.max_live;
  stats.tasks_run = state.tasks_run;
  stats.last_cancel_latency_seconds = state.last_cancel_latency;
  return stats;
}

void ServingCore::WorkerMain() {
  const std::shared_ptr<State> shared_state = state_;
  State& state = *shared_state;
  uint64_t last_job_id = 0;
  MutexLock lock(state.mutex);
  for (;;) {
    if (state.stopping) return;
    std::shared_ptr<ChartJob> job;
    int slot = -1;
    if (!PickWork(state, &job, &slot)) {
      // No chart work runnable: background tasks get the idle cycles.
      if (!state.tasks.empty()) {
        std::function<void()> task = std::move(state.tasks.front());
        state.tasks.pop_front();
        ++state.tasks_run;
        lock.Unlock();
        task();
        lock.Lock();
        continue;
      }
      // The predicate runs with state.mutex held (CondVar::Wait contract)
      // but in a lambda TSA analyzes as a fresh context — hence the
      // explicit opt-out.
      state.cv.Wait(state.mutex, [&state]() KGOA_NO_THREAD_SAFETY_ANALYSIS {
        return state.stopping || !state.queue.empty() ||
               !state.tasks.empty();
      });
      continue;
    }
    ++state.quanta;
    if (last_job_id != 0 && last_job_id != job->id) ++state.preemptions;
    last_job_id = job->id;
    lock.Unlock();
    const uint64_t ran = RunQuantum(*job, slot);
    lock.Lock();
    state.walks += ran;
    const RetireAction action = ReturnSlot(state, job, slot, ran);
    if (action.finalize) {
      lock.Unlock();
      FinalizeJob(*job, action.cancelled);
      lock.Lock();
    }
  }
}

// ---------------------------------------------------------------------------
// Synchronous executor on top of the serving core
// ---------------------------------------------------------------------------

ParallelOlaExecutor::ParallelOlaExecutor(const IndexSet& indexes,
                                         ChainQuery query,
                                         ParallelOlaOptions options)
    : ParallelOlaExecutor(GraphSnapshot::Unowned(indexes), std::move(query),
                          std::move(options)) {}

ParallelOlaExecutor::ParallelOlaExecutor(GraphSnapshot snapshot,
                                         ChainQuery query,
                                         ParallelOlaOptions options)
    : snapshot_(std::move(snapshot)),
      query_(std::move(query)),
      options_(std::move(options)) {
  KGOA_CHECK(snapshot_.valid());
  KGOA_CHECK(options_.threads >= 1);
  KGOA_CHECK(options_.workers >= 1);
  // Only the audit engine's distinct estimator audits reach
  // probabilities; everything else runs cache-less.
  if (options_.engine == OlaEngineKind::kAudit && query_.distinct()) {
    if (options_.shared_reach != nullptr) {
      shared_reach_ = options_.shared_reach;
    } else if (options_.share_reach) {
      shared_plan_ = std::make_unique<WalkPlan>(
          WalkPlan::Compile(query_, options_.walk_order));
      owned_shared_reach_ = std::make_unique<ReachProbability>(
          snapshot_.indexes(), *shared_plan_);
      shared_reach_ = owned_shared_reach_.get();
    }
  }
}

ParallelOlaExecutor::~ParallelOlaExecutor() = default;

ServingCore& ParallelOlaExecutor::Core() const {
  // Guarded lazy construction: Run* calls are const and documented
  // thread-safe, so two threads' first calls must not race building the
  // pool. (Annotation-era finding: the pre-TSA code built `core_` behind
  // no lock — a real construction race under concurrent first Runs,
  // pinned by SyncTest.ConcurrentExecutorRunsShareOneCore.)
  MutexLock lock(core_mutex_);
  if (core_ == nullptr) {
    ServingCore::Options core_options;
    core_options.threads = std::max(1, options_.threads);
    core_options.quantum_walks =
        std::max<uint64_t>(1, options_.publish_every);
    core_ = std::make_unique<ServingCore>(snapshot_, core_options);
  }
  return *core_;
}

ChartJobOptions ParallelOlaExecutor::BaseJobOptions() const {
  ChartJobOptions job;
  job.seed = options_.seed;
  job.engine = options_.engine;
  job.walk_order = options_.walk_order;
  job.tipping_threshold = options_.tipping_threshold;
  job.batch_walks = options_.batch_walks;
  // The executor resolved reach sharing at construction (so the cache
  // stays warm across Run calls); the job must not build its own.
  job.share_reach = false;
  job.shared_reach = shared_reach_;
  job.snapshot = snapshot_;
  job.snapshot_period = options_.snapshot_period;
  return job;
}

ParallelOlaResult ParallelOlaExecutor::RunForDuration(
    double seconds, const OlaSnapshotCallback& callback) const {
  ChartJobOptions job = BaseJobOptions();
  job.walk_budget = 0;
  job.deadline_seconds = seconds;
  // One logical worker per pool thread, like the original deadline mode.
  job.workers = std::max(1, options_.threads);
  job.max_concurrency = options_.threads;
  job.on_snapshot = callback;
  return Core().Submit(query_, std::move(job)).Await();
}

ParallelOlaResult ParallelOlaExecutor::RunWalkBudget(
    uint64_t total_walks, const OlaSnapshotCallback& callback) const {
  ChartJobOptions job = BaseJobOptions();
  job.walk_budget = total_walks;
  job.workers = std::max(1, options_.workers);
  job.max_concurrency = options_.threads;
  job.on_snapshot = callback;
  return Core().Submit(query_, std::move(job)).Await();
}

GroupedEstimates RunParallelOla(const IndexSet& indexes,
                                const ChainQuery& query,
                                const ParallelOlaOptions& options,
                                double seconds) {
  return ParallelOlaExecutor(indexes, query, options)
      .RunForDuration(seconds)
      .estimates;
}

}  // namespace kgoa
