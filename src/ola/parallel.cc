#include "src/ola/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "src/core/audit.h"
#include "src/core/reach.h"
#include "src/ola/wander.h"
#include "src/util/contract.h"
#include "src/util/stopwatch.h"

namespace kgoa {
namespace {

using SteadyClock = std::chrono::steady_clock;

// Walks run between deadline checks in deadline mode.
constexpr uint64_t kDeadlineBatch = 64;

SteadyClock::duration SecondsToDuration(double seconds) {
  return std::chrono::duration_cast<SteadyClock::duration>(
      std::chrono::duration<double>(seconds));
}

// Uniform worker-local view over the two engines.
class WorkerEngine {
 public:
  WorkerEngine(const IndexSet& indexes, const ChainQuery& query,
               const ParallelOlaOptions& options, uint64_t seed,
               ReachProbability* shared_reach) {
    if (options.use_audit) {
      AuditJoin::Options aj;
      aj.seed = seed;
      aj.walk_order = options.walk_order;
      aj.tipping_threshold = options.tipping_threshold;
      aj.shared_reach = shared_reach;
      audit_ = std::make_unique<AuditJoin>(indexes, query, aj);
    } else {
      WanderJoin::Options wj;
      wj.seed = seed;
      wj.walk_order = options.walk_order;
      wander_ = std::make_unique<WanderJoin>(indexes, query, wj);
    }
  }

  void RunWalks(uint64_t count) {
    if (audit_) {
      audit_->RunWalks(count);
    } else {
      wander_->RunWalks(count);
    }
  }

  const GroupedEstimates& estimates() const {
    return audit_ ? audit_->estimates() : wander_->estimates();
  }

  OlaCounters counters() const {
    OlaCounters c;
    if (audit_) {
      c.tipped_walks = audit_->tipped_walks();
      c.full_walks = audit_->full_walks();
      c.tip_aborts = audit_->tip_aborts();
      c.ctj_cache_hits = audit_->suffix_cache_hits();
      if (audit_->owns_reach()) {
        // Private cache: this worker's stats are its own to report. A
        // shared cache is reported once by the executor instead, so the
        // worker merge cannot multiply it.
        const ShardedTableStats reach = audit_->reach().stats();
        c.reach_hits = reach.hits;
        c.reach_misses = reach.misses;
        c.reach_contention = reach.insert_contention;
        c.reach_entries = reach.entries;
      }
    } else {
      c.full_walks = wander_->estimates().walks() -
                     wander_->estimates().rejected_walks();
      c.duplicate_walks = wander_->duplicate_walks();
    }
    return c;
  }

 private:
  std::unique_ptr<AuditJoin> audit_;
  std::unique_ptr<WanderJoin> wander_;
};

// This run's view of a shared reach cache: counters are reported as the
// delta over the cache's totals at run start, so a session-owned cache
// that stays warm across runs does not leak earlier runs' activity into
// this run's counters.
struct ReachWindow {
  const ReachProbability* cache = nullptr;
  ShardedTableStats baseline;

  static ReachWindow Open(const ReachProbability* cache) {
    ReachWindow window;
    window.cache = cache;
    if (cache != nullptr) window.baseline = cache->stats();
    return window;
  }

  void AddDelta(OlaCounters& counters) const {
    if (cache == nullptr) return;
    const ShardedTableStats now = cache->stats();
    counters.reach_hits += now.hits - baseline.hits;
    counters.reach_misses += now.misses - baseline.misses;
    counters.reach_contention +=
        now.insert_contention - baseline.insert_contention;
    counters.reach_entries = now.entries;
  }
};

// One publication slot per logical worker: the worker copies its partial
// accumulators in under the mutex; the snapshot loop merges them out.
struct PublishSlot {
  std::mutex mutex;
  GroupedEstimates partial;
  OlaCounters counters;
};

// Coordination between the workers and the snapshot loop running on the
// calling thread.
struct RunState {
  std::mutex mutex;
  std::condition_variable cv;
  int active = 0;  // threads still running
};

void Publish(PublishSlot& slot, const WorkerEngine& engine) {
  // The copy reads only worker-private engine state; only the handoff
  // into the slot needs the lock.
  GroupedEstimates partial = engine.estimates();
  const OlaCounters counters = engine.counters();
  std::lock_guard<std::mutex> lock(slot.mutex);
  slot.partial = std::move(partial);
  slot.counters = counters;
}

void FillRates(const Stopwatch& clock, OlaSnapshot& snapshot) {
  snapshot.elapsed_seconds = clock.ElapsedSeconds();
  snapshot.walks_per_second =
      snapshot.elapsed_seconds > 0
          ? static_cast<double>(snapshot.walks) / snapshot.elapsed_seconds
          : 0.0;
}

// Merges the published partials into `merged` and describes them.
OlaSnapshot MergeSnapshot(std::vector<PublishSlot>& slots,
                          const Stopwatch& clock, const ReachWindow& reach,
                          GroupedEstimates* merged) {
  OlaSnapshot snapshot;
  *merged = GroupedEstimates();
  for (PublishSlot& slot : slots) {
    std::lock_guard<std::mutex> lock(slot.mutex);
    merged->Merge(slot.partial);
    snapshot.counters.Merge(slot.counters);
  }
  reach.AddDelta(snapshot.counters);
  snapshot.walks = merged->walks();
  snapshot.rejected_walks = merged->rejected_walks();
  snapshot.rejection_rate = merged->RejectionRate();
  snapshot.estimates = merged;
  FillRates(clock, snapshot);
  return snapshot;
}

// Blocks until every worker finished, delivering snapshots at the
// configured cadence meanwhile. No busy-sleep: the thread sleeps on the
// condition variable until the next snapshot tick or worker completion.
void SnapshotLoop(RunState& state, std::vector<PublishSlot>& slots,
                  const Stopwatch& clock, const ParallelOlaOptions& options,
                  const ReachWindow& reach,
                  const OlaSnapshotCallback& callback) {
  std::unique_lock<std::mutex> lock(state.mutex);
  if (!callback) {
    state.cv.wait(lock, [&] { return state.active == 0; });
    return;
  }
  const auto period =
      SecondsToDuration(std::max(options.snapshot_period, 1e-4));
  auto next_tick = SteadyClock::now() + period;
  while (state.active > 0) {
    state.cv.wait_until(lock, next_tick);
    if (state.active == 0) break;
    if (SteadyClock::now() < next_tick) continue;  // spurious wakeup
    lock.unlock();
    GroupedEstimates merged;
    callback(MergeSnapshot(slots, clock, reach, &merged));
    lock.lock();
    next_tick = SteadyClock::now() + period;
  }
}

void FinishThread(RunState& state) {
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    --state.active;
  }
  state.cv.notify_all();
}

OlaSnapshot FinalSnapshot(const ParallelOlaResult& result) {
  OlaSnapshot snapshot;
  snapshot.elapsed_seconds = result.elapsed_seconds;
  snapshot.walks = result.estimates.walks();
  snapshot.rejected_walks = result.estimates.rejected_walks();
  snapshot.rejection_rate = result.estimates.RejectionRate();
  snapshot.walks_per_second =
      result.elapsed_seconds > 0
          ? static_cast<double>(snapshot.walks) / result.elapsed_seconds
          : 0.0;
  snapshot.counters = result.counters;
  snapshot.estimates = &result.estimates;
  snapshot.final_snapshot = true;
  return snapshot;
}

}  // namespace

ParallelOlaExecutor::ParallelOlaExecutor(const IndexSet& indexes,
                                         ChainQuery query,
                                         ParallelOlaOptions options)
    : indexes_(indexes),
      query_(std::move(query)),
      options_(std::move(options)) {
  KGOA_CHECK(options_.threads >= 1);
  KGOA_CHECK(options_.workers >= 1);
  // Only the audit engine's distinct estimator audits reach
  // probabilities; everything else runs cache-less.
  if (options_.use_audit && query_.distinct()) {
    if (options_.shared_reach != nullptr) {
      shared_reach_ = options_.shared_reach;
    } else if (options_.share_reach) {
      shared_plan_ = std::make_unique<WalkPlan>(
          WalkPlan::Compile(query_, options_.walk_order));
      owned_shared_reach_ =
          std::make_unique<ReachProbability>(indexes_, *shared_plan_);
      shared_reach_ = owned_shared_reach_.get();
    }
  }
}

ParallelOlaExecutor::~ParallelOlaExecutor() = default;

ParallelOlaResult ParallelOlaExecutor::RunForDuration(
    double seconds, const OlaSnapshotCallback& callback) const {
  const int threads = std::max(1, options_.threads);
  const uint64_t publish_every = std::max<uint64_t>(1, options_.publish_every);

  std::vector<PublishSlot> slots(threads);
  std::vector<GroupedEstimates> finals(threads);
  std::vector<OlaCounters> final_counters(threads);
  RunState state;
  state.active = threads;

  // The clock starts before any thread is spawned: spawn latency and
  // engine construction spend the budget rather than silently extending
  // it, and every worker checks this one shared deadline.
  Stopwatch clock;
  const auto deadline = SteadyClock::now() + SecondsToDuration(seconds);
  const ReachWindow reach = ReachWindow::Open(shared_reach_);

  auto thread_main = [&](int w) {
    WorkerEngine engine(indexes_, query_, options_,
                        options_.seed + static_cast<uint64_t>(w),
                        shared_reach_);
    uint64_t since_publish = 0;
    while (SteadyClock::now() < deadline) {
      engine.RunWalks(kDeadlineBatch);
      since_publish += kDeadlineBatch;
      if (callback && since_publish >= publish_every) {
        Publish(slots[w], engine);
        since_publish = 0;
      }
    }
    finals[w] = engine.estimates();
    final_counters[w] = engine.counters();
    FinishThread(state);
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int w = 0; w < threads; ++w) pool.emplace_back(thread_main, w);
  SnapshotLoop(state, slots, clock, options_, reach, callback);
  for (std::thread& thread : pool) thread.join();

  ParallelOlaResult result;
  result.workers = threads;
  for (int w = 0; w < threads; ++w) {
    result.estimates.Merge(finals[w]);
    result.counters.Merge(final_counters[w]);
  }
  reach.AddDelta(result.counters);
  result.elapsed_seconds = clock.ElapsedSeconds();
  if (callback) callback(FinalSnapshot(result));
  return result;
}

ParallelOlaResult ParallelOlaExecutor::RunWalkBudget(
    uint64_t total_walks, const OlaSnapshotCallback& callback) const {
  const int workers = std::max(1, options_.workers);
  const int threads = std::clamp(options_.threads, 1, workers);
  const uint64_t publish_every = std::max<uint64_t>(1, options_.publish_every);
  const uint64_t base_share = total_walks / static_cast<uint64_t>(workers);
  const uint64_t remainder = total_walks % static_cast<uint64_t>(workers);

  std::vector<PublishSlot> slots(workers);
  std::vector<GroupedEstimates> finals(workers);
  std::vector<OlaCounters> final_counters(workers);
  RunState state;
  state.active = threads;
  std::atomic<int> next_worker{0};
  Stopwatch clock;
  const ReachWindow reach = ReachWindow::Open(shared_reach_);

  // Threads pull logical workers off a shared counter; which thread runs
  // which worker is scheduling-dependent, but every worker's walks are a
  // pure function of its own seed and share, so the ordered merge below
  // is not. The shared reach cache does not break this: its memo values
  // are pure functions of the plan, so whether a worker computes an entry
  // itself or reads one computed by a racing peer, it divides by the same
  // bits (contract-checked in ShardedFlatTable::Insert).
  auto thread_main = [&]() {
    for (int w = next_worker.fetch_add(1, std::memory_order_relaxed);
         w < workers;
         w = next_worker.fetch_add(1, std::memory_order_relaxed)) {
      const uint64_t share =
          base_share + (static_cast<uint64_t>(w) < remainder ? 1 : 0);
      WorkerEngine engine(indexes_, query_, options_,
                          options_.seed + static_cast<uint64_t>(w),
                          shared_reach_);
      uint64_t done = 0;
      while (done < share) {
        const uint64_t batch = std::min(publish_every, share - done);
        engine.RunWalks(batch);
        done += batch;
        if (callback) Publish(slots[w], engine);
      }
      finals[w] = engine.estimates();
      final_counters[w] = engine.counters();
    }
    FinishThread(state);
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int t = 0; t < threads; ++t) pool.emplace_back(thread_main);
  SnapshotLoop(state, slots, clock, options_, reach, callback);
  for (std::thread& thread : pool) thread.join();

  ParallelOlaResult result;
  result.workers = workers;
  // Ordered merge over logical workers: the double summation happens in
  // the same order no matter how many threads ran, so the result is
  // bit-identical across runs and thread counts.
  for (int w = 0; w < workers; ++w) {
    result.estimates.Merge(finals[w]);
    result.counters.Merge(final_counters[w]);
  }
  reach.AddDelta(result.counters);
  // Walk-budget determinism: every logical worker ran exactly its share,
  // so the merged walk count must equal the requested budget regardless
  // of how the workers were scheduled onto threads.
  KGOA_DCHECK_EQ(result.estimates.walks(), total_walks);
  result.elapsed_seconds = clock.ElapsedSeconds();
  if (callback) callback(FinalSnapshot(result));
  return result;
}

GroupedEstimates RunParallelOla(const IndexSet& indexes,
                                const ChainQuery& query,
                                const ParallelOlaOptions& options,
                                double seconds) {
  return ParallelOlaExecutor(indexes, query, options)
      .RunForDuration(seconds)
      .estimates;
}

}  // namespace kgoa
