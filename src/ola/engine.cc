#include "src/ola/engine.h"

#include <algorithm>
#include <utility>

#include "src/core/audit.h"
#include "src/core/reach.h"
#include "src/ola/ripple.h"
#include "src/ola/wander.h"

namespace kgoa {
namespace {

class AuditEngine final : public OlaEngine {
 public:
  AuditEngine(const IndexSet& indexes, const ChainQuery& query,
              const OlaEngineOptions& options) {
    AuditJoin::Options aj;
    aj.seed = options.seed;
    aj.walk_order = options.walk_order;
    aj.tipping_threshold = options.tipping_threshold;
    aj.shared_reach = options.shared_reach;
    aj.batch_walks = options.batch_walks;
    audit_ = std::make_unique<AuditJoin>(indexes, query, aj);
  }

  void RunWalks(uint64_t count) override { audit_->RunWalks(count); }

  const GroupedEstimates& estimates() const override {
    return audit_->estimates();
  }

  void FillCounters(OlaCounters* out) const override {
    out->tipped_walks += audit_->tipped_walks();
    out->full_walks += audit_->full_walks();
    out->tip_aborts += audit_->tip_aborts();
    out->ctj_cache_hits += audit_->suffix_cache_hits();
    out->pruned_walks += audit_->pruned_walks();
    out->batched_walks += audit_->batched_walks();
    if (audit_->owns_reach()) {
      // Private cache: this engine's stats are its own to report. A
      // shared cache is reported once by the executor instead (as a
      // per-run delta), so the worker merge cannot multiply it.
      const ShardedTableStats reach = audit_->reach().stats();
      out->reach_hits += reach.hits;
      out->reach_misses += reach.misses;
      out->reach_contention += reach.insert_contention;
      out->reach_entries = std::max(out->reach_entries, reach.entries);
    }
  }

  bool mergeable() const override { return true; }
  OlaEngineKind kind() const override { return OlaEngineKind::kAudit; }

  void SetGroupFilter(std::shared_ptr<const GroupFilter> filter) override {
    audit_->SetGroupFilter(std::move(filter));
  }

 private:
  std::unique_ptr<AuditJoin> audit_;
};

class WanderEngine final : public OlaEngine {
 public:
  WanderEngine(const IndexSet& indexes, const ChainQuery& query,
               const OlaEngineOptions& options) {
    WanderJoin::Options wj;
    wj.seed = options.seed;
    wj.walk_order = options.walk_order;
    wj.batch_walks = options.batch_walks;
    wander_ = std::make_unique<WanderJoin>(indexes, query, wj);
  }

  void RunWalks(uint64_t count) override { wander_->RunWalks(count); }

  const GroupedEstimates& estimates() const override {
    return wander_->estimates();
  }

  void FillCounters(OlaCounters* out) const override {
    out->full_walks += wander_->estimates().walks() -
                       wander_->estimates().rejected_walks();
    out->duplicate_walks += wander_->duplicate_walks();
    out->pruned_walks += wander_->pruned_walks();
    out->batched_walks += wander_->batched_walks();
  }

  void SetGroupFilter(std::shared_ptr<const GroupFilter> filter) override {
    wander_->SetGroupFilter(std::move(filter));
  }

  // Caveat, worth keeping in the merge-capable bucket with eyes open: the
  // distinct mode's Ripple seen-set is engine-local, so duplicates across
  // workers are double-counted — the merged distinct estimate is more
  // biased than a sequential one (demonstrating that is part of the
  // paper's motivation for Audit Join). Non-distinct merges are exact.
  bool mergeable() const override { return true; }
  OlaEngineKind kind() const override { return OlaEngineKind::kWander; }

 private:
  std::unique_ptr<WanderJoin> wander_;
};

class RippleEngine final : public OlaEngine {
 public:
  RippleEngine(const IndexSet& indexes, const ChainQuery& query,
               const OlaEngineOptions& options) {
    RippleJoin::Options rj;
    rj.seed = options.seed;
    rj.batch_per_round = options.ripple_batch;
    ripple_ = std::make_unique<RippleJoin>(indexes, query, rj);
  }

  void RunWalks(uint64_t count) override {
    for (uint64_t i = 0; i < count && !ripple_->exhausted(); ++i) {
      ripple_->RunRound();
    }
    // Re-synthesize the snapshot: Ripple keeps per-group point estimates
    // (no per-walk variance), so the GroupedEstimates view carries each
    // estimate as a single contribution over one pseudo-walk — Estimate()
    // reproduces the point estimate exactly and CiHalfWidth() reports 0
    // (the honest value: Ripple's classic CI construction is not
    // implemented here).
    snapshot_ = GroupedEstimates();
    for (const auto& [group, estimate] : ripple_->Estimates()) {
      if (estimate > 0) snapshot_.AddContribution(group, estimate);
    }
    snapshot_.EndWalk(false);
  }

  const GroupedEstimates& estimates() const override { return snapshot_; }

  void FillCounters(OlaCounters* out) const override {
    out->full_walks += ripple_->rounds();
  }

  bool mergeable() const override { return false; }
  OlaEngineKind kind() const override { return OlaEngineKind::kRipple; }

 private:
  std::unique_ptr<RippleJoin> ripple_;
  GroupedEstimates snapshot_;
};

}  // namespace

OlaEngine::~OlaEngine() = default;

const char* OlaEngineName(OlaEngineKind kind) {
  switch (kind) {
    case OlaEngineKind::kAudit:
      return "audit";
    case OlaEngineKind::kWander:
      return "wander";
    case OlaEngineKind::kRipple:
      return "ripple";
  }
  return "unknown";
}

bool OlaEngineKindMergeable(OlaEngineKind kind) {
  return kind != OlaEngineKind::kRipple;
}

std::unique_ptr<OlaEngine> MakeOlaEngine(const IndexSet& indexes,
                                         const ChainQuery& query,
                                         const OlaEngineOptions& options) {
  switch (options.kind) {
    case OlaEngineKind::kAudit:
      return std::make_unique<AuditEngine>(indexes, query, options);
    case OlaEngineKind::kWander:
      return std::make_unique<WanderEngine>(indexes, query, options);
    case OlaEngineKind::kRipple:
      return std::make_unique<RippleEngine>(indexes, query, options);
  }
  return nullptr;
}

}  // namespace kgoa
