// Walk plans: the compiled form of a chain query for random-walk sampling.
//
// A walk order visits the query's patterns so that every pattern after the
// first is chain-adjacent to the span already covered (Wander Join's "walk
// order" requirement). Each step resolves the range of triples matching the
// pattern given the value of its in-variable (bound by an earlier step),
// which gives both the fan-out d_i and O(1) uniform sampling.
//
// The paper selects, per query, the Wander Join order with the best error
// (section V-B); CandidateWalkOrders enumerates the orders that selection
// considers.
#ifndef KGOA_OLA_WALK_PLAN_H_
#define KGOA_OLA_WALK_PLAN_H_

#include <vector>

#include "src/index/index_set.h"
#include "src/join/access.h"
#include "src/join/filter.h"
#include "src/query/chain_query.h"

namespace kgoa {

// Default walk-batch width for the structure-of-arrays walk loop (engine
// option batch_walks == 0). 32 walks keep the per-level hash-probe and
// triple-fetch pipelines deeper than kernels::kProbePrefetchDepth while
// the batch state stays a few cache lines. Any width produces
// bit-identical estimates (per-walk counter-derived RNG; see
// src/util/rng.h WalkSeed), so this is purely a throughput knob.
inline constexpr uint32_t kDefaultWalkBatch = 32;

struct WalkStep {
  int pattern_index = 0;
  VarId in_var = kNoVar;  // kNoVar only for the first step
  PatternAccess access;
  // Existence filters of this pattern; a sampled tuple failing them rejects
  // the walk (exact passes skip the tuple).
  FilterSet filter;

  // After sampling a triple at this step, copy triple[component] into
  // tracked slot `slot` for each entry (variables first bound here).
  struct Record {
    int component;
    int slot;
  };
  std::vector<Record> records;

  int in_slot = -1;  // tracked slot of in_var (-1 for the first step)
};

class WalkPlan {
 public:
  // `pattern_order` is a permutation of 0..n-1 with the contiguity
  // property; empty means forward order 0,1,...,n-1. Aborts on an invalid
  // order.
  static WalkPlan Compile(const ChainQuery& query,
                          std::vector<int> pattern_order = {});

  const ChainQuery& query() const { return *query_; }
  const std::vector<WalkStep>& steps() const { return steps_; }
  int NumSteps() const { return static_cast<int>(steps_.size()); }
  const std::vector<int>& pattern_order() const { return pattern_order_; }

  // Tracked-value slots: one per query variable.
  int num_slots() const { return static_cast<int>(slot_vars_.size()); }
  int SlotOf(VarId v) const;
  int alpha_slot() const { return alpha_slot_; }
  int beta_slot() const { return beta_slot_; }

  // Walk step at which `pattern_index` is sampled.
  int StepOf(int pattern_index) const { return step_of_[pattern_index]; }

  // Step that recorded step q's in-variable (-1 for the first step).
  int ParentStepOf(int q) const { return parent_step_[q]; }

  // Step whose sampled triple fills tracked slot `slot`.
  int RecordStepOfSlot(int slot) const { return slot_recorded_at_[slot]; }

  // True when steps q..n-1 form one linear segment: each step's in-variable
  // is recorded by the step immediately before it. Audit Join's memoized
  // suffix counting (the CTJ cache) applies exactly in this case.
  bool SingleSegmentFrom(int q) const;

 private:
  const ChainQuery* query_ = nullptr;
  std::vector<int> pattern_order_;
  std::vector<WalkStep> steps_;
  std::vector<VarId> slot_vars_;
  std::vector<int> step_of_;
  std::vector<int> parent_step_;
  std::vector<int> slot_recorded_at_;
  int alpha_slot_ = -1;
  int beta_slot_ = -1;
};

// All "directional" contiguous walk orders of an n-pattern chain: for each
// start s, cover the right side then the left (and vice versa). This is the
// candidate set used for the paper's per-query order selection.
std::vector<std::vector<int>> CandidateWalkOrders(int num_patterns);

}  // namespace kgoa

#endif  // KGOA_OLA_WALK_PLAN_H_
