#include "src/ola/estimator.h"

#include <cmath>

#include "src/util/contract.h"

namespace kgoa {

void GroupedEstimates::AddContribution(TermId group, double value) {
  // Estimator non-negativity: every contribution is a Horvitz-Thompson
  // weight (count / probability), so a negative or non-finite value can
  // only come from a corrupted walk.
  KGOA_DCHECK(std::isfinite(value) && value >= 0.0);
  Accumulator& acc = groups_[group];
  acc.sum += value;
  acc.sum_squares += value * value;
}

void GroupedEstimates::EndWalk(bool rejected) {
  ++walks_;
  if (rejected) ++rejected_;
}

double GroupedEstimates::Estimate(TermId group) const {
  if (walks_ == 0) return 0.0;
  auto it = groups_.find(group);
  if (it == groups_.end()) return 0.0;
  const double estimate = it->second.sum / static_cast<double>(walks_);
  KGOA_DCHECK_GE(estimate, 0.0);  // a count estimate can never be negative
  return estimate;
}

double GroupedEstimates::CiHalfWidth(TermId group, double z) const {
  if (walks_ < 2) return 0.0;
  auto it = groups_.find(group);
  if (it == groups_.end()) return 0.0;
  const double n = static_cast<double>(walks_);
  const double mean = it->second.sum / n;
  // Per-walk contributions are zero except when the walk reached the
  // group, so E[X^2] = sum_squares / N over all N walks.
  double variance = it->second.sum_squares / n - mean * mean;
  if (variance < 0) variance = 0;  // rounding guard
  return z * std::sqrt(variance / n);
}

void GroupedEstimates::Merge(const GroupedEstimates& other) {
  for (const auto& [group, acc] : other.groups_) {
    Accumulator& mine = groups_[group];
    mine.sum += acc.sum;
    mine.sum_squares += acc.sum_squares;
  }
  walks_ += other.walks_;
  rejected_ += other.rejected_;
}

std::unordered_map<TermId, double> GroupedEstimates::Estimates() const {
  std::unordered_map<TermId, double> out;
  for (const auto& [group, acc] : groups_) {
    if (walks_ > 0) out[group] = acc.sum / static_cast<double>(walks_);
  }
  return out;
}

}  // namespace kgoa
