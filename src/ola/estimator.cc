#include "src/ola/estimator.h"

#include <cmath>

#include "src/util/contract.h"

namespace kgoa {

void GroupedEstimates::AddContribution(TermId group, double value) {
  // Estimator non-negativity: every contribution is a Horvitz-Thompson
  // weight (count / probability), so a negative or non-finite value can
  // only come from a corrupted walk.
  KGOA_DCHECK(std::isfinite(value) && value >= 0.0);
  Accumulator& acc = groups_.FindOrAdd(group);
  acc.sum += value;
  acc.sum_squares += value * value;
}

void GroupedEstimates::EndWalk(bool rejected) {
  ++walks_;
  if (rejected) ++rejected_;
}

double GroupedEstimates::Estimate(TermId group) const {
  if (walks_ == 0) return 0.0;
  const Accumulator* acc = groups_.Find(group);
  if (acc == nullptr) return 0.0;
  const double estimate = acc->sum / static_cast<double>(walks_);
  KGOA_DCHECK_GE(estimate, 0.0);  // a count estimate can never be negative
  return estimate;
}

double GroupedEstimates::CiHalfWidth(TermId group, double z) const {
  if (walks_ < 2) return 0.0;
  const Accumulator* acc = groups_.Find(group);
  if (acc == nullptr) return 0.0;
  const double n = static_cast<double>(walks_);
  const double mean = acc->sum / n;
  // Per-walk contributions are zero except when the walk reached the
  // group, so sum_squares already sums X^2 over all N walks. Haas's
  // large-sample interval uses the SAMPLE variance (n - 1 denominator):
  // the population form is biased low and makes the CI systematically
  // too tight at small walk counts.
  double variance = (acc->sum_squares - n * mean * mean) / (n - 1.0);
  if (variance < 0) variance = 0;  // rounding guard
  return z * std::sqrt(variance / n);
}

void GroupedEstimates::Merge(const GroupedEstimates& other) {
  for (const auto& item : other.groups_.items()) {
    Accumulator& mine = groups_.FindOrAdd(item.key);
    mine.sum += item.value.sum;
    mine.sum_squares += item.value.sum_squares;
  }
  walks_ += other.walks_;
  rejected_ += other.rejected_;
}

// kgoa-lint: allow(unordered-in-hot-path) result type only
std::unordered_map<TermId, double> GroupedEstimates::Estimates() const {
  std::unordered_map<TermId, double> out;  // kgoa-lint: allow(unordered-in-hot-path)
  if (walks_ == 0) return out;
  for (const auto& item : groups_.items()) {
    out[item.key] = item.value.sum / static_cast<double>(walks_);
  }
  return out;
}

}  // namespace kgoa
