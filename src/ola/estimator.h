// Per-group online estimators with large-sample confidence intervals.
//
// Both Wander Join and Audit Join produce one Horvitz-Thompson style
// contribution per (walk, group); the grouped estimate after N walks is
// sum / N per group (Figure 7, line 24), and the 0.95 confidence interval
// follows Haas's large-sample (CLT) construction used by Wander Join
// (section IV-C).
//
// The per-group accumulators live in an insertion-ordered flat arena
// (FlatAccumulator): AddContribution is on every walk's hot path, and the
// deterministic iteration order keeps Merge's floating-point folds
// bit-stable across runs.
#ifndef KGOA_OLA_ESTIMATOR_H_
#define KGOA_OLA_ESTIMATOR_H_

#include <cstdint>
#include <unordered_map>  // kgoa-lint: allow(unordered-in-hot-path) result type only

#include "src/index/flat_table.h"
#include "src/rdf/types.h"

namespace kgoa {

class GroupedEstimates {
 public:
  // Adds this walk's contribution to `group`. Call at most once per group
  // per walk (a walk that reaches several groups through a partial exact
  // computation calls it once for each), then call EndWalk exactly once.
  void AddContribution(TermId group, double value);

  // Finishes a walk. Every walk — including rejected ones, whose
  // contribution is zero — increments the denominator.
  void EndWalk(bool rejected);

  uint64_t walks() const { return walks_; }
  uint64_t rejected_walks() const { return rejected_; }
  double RejectionRate() const {
    return walks_ == 0 ? 0.0 : static_cast<double>(rejected_) /
                                   static_cast<double>(walks_);
  }

  // Current estimate for `group` (0 when never contributed to).
  double Estimate(TermId group) const;

  // Half-width of the large-sample confidence interval for `group` at the
  // z value given (default: 0.95 two-sided).
  double CiHalfWidth(TermId group, double z = 1.959963984540054) const;

  // Groups with at least one nonzero contribution. Node-based map is the
  // deliberate result-container exception: callers index the snapshot by
  // arbitrary group, off the walk hot path.
  // kgoa-lint: allow(unordered-in-hot-path) result container
  std::unordered_map<TermId, double> Estimates() const;

  // Folds another estimator's accumulators into this one. Sound when the
  // other estimator's walks are independent and identically distributed
  // with this one's (same query, same walk plan, different seeds) — the
  // basis of parallel online aggregation (src/ola/parallel.h). Folds in
  // the other estimator's insertion order, so merging the same sequence
  // of partials always produces bit-identical sums.
  void Merge(const GroupedEstimates& other);

 private:
  struct Accumulator {
    double sum = 0;
    double sum_squares = 0;
  };

  FlatAccumulator<TermId, Accumulator> groups_;
  uint64_t walks_ = 0;
  uint64_t rejected_ = 0;
};

}  // namespace kgoa

#endif  // KGOA_OLA_ESTIMATOR_H_
