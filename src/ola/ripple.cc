#include "src/ola/ripple.h"

#include "src/util/contract.h"

namespace kgoa {

RippleJoin::RippleJoin(const IndexSet& indexes, const ChainQuery& query,
                       Options options)
    : indexes_(indexes),
      query_(query),
      options_(options),
      rng_(options.seed) {
  for (int i = 0; i < query_.NumPatterns(); ++i) {
    PatternSample sample;
    sample.access = PatternAccess::Compile(query_.patterns()[i], kNoVar);
    sample.filter = FilterSet(query_.filters(i));
    sample.extent = sample.access.Resolve(indexes_, kInvalidTerm);
    sample.positions.reserve(sample.extent.size());
    for (uint32_t pos = sample.extent.begin; pos < sample.extent.end;
         ++pos) {
      sample.positions.push_back(pos);
    }
    samples_.push_back(std::move(sample));
  }
}

bool RippleJoin::exhausted() const {
  for (const PatternSample& sample : samples_) {
    if (sample.sampled < sample.positions.size()) return false;
  }
  return true;
}

double RippleJoin::MinCoverage() const {
  double min_coverage = 1.0;
  for (const PatternSample& sample : samples_) {
    if (sample.positions.empty()) return 0.0;
    min_coverage = std::min(
        min_coverage, static_cast<double>(sample.sampled) /
                          static_cast<double>(sample.positions.size()));
  }
  return min_coverage;
}

void RippleJoin::RunRound() {
  // Progressive Fisher-Yates: extend each sample by the batch.
  for (PatternSample& sample : samples_) {
    const auto total = static_cast<uint32_t>(sample.positions.size());
    for (uint32_t k = 0; k < options_.batch_per_round && sample.sampled < total;
         ++k) {
      const uint32_t i = sample.sampled;
      const uint32_t j =
          i + static_cast<uint32_t>(rng_.Below(total - i));
      std::swap(sample.positions[i], sample.positions[j]);
      ++sample.sampled;
    }
  }
  ++rounds_;
  Recompute();
}

void RippleJoin::Recompute() {
  estimates_.Clear();

  // Scale factor: product over patterns of extent / sample.
  double scale = 1.0;
  for (const PatternSample& sample : samples_) {
    if (sample.sampled == 0) return;  // some sample still empty
    scale *= static_cast<double>(sample.positions.size()) /
             static_cast<double>(sample.sampled);
  }

  const int anchor = query_.alpha_beta_pattern();
  const TriplePattern& ap = query_.patterns()[anchor];
  const int alpha_component = ap.ComponentOf(query_.alpha());
  const int beta_component = ap.ComponentOf(query_.beta());

  // Dynamic programming over the sampled tuples: arm counts keyed by the
  // join value facing the anchor, accumulated in flat arenas.
  auto arm_counts =
      [&](int from, int step) -> FlatAccumulator<TermId, uint64_t> {
    FlatAccumulator<TermId, uint64_t> counts;  // value -> path count
    bool first = true;
    // Walk from the far end of the arm toward the anchor.
    std::vector<int> order;
    for (int i = from; i >= 0 && i < query_.NumPatterns() && i != anchor;
         i += step) {
      order.push_back(i);
    }
    // order currently anchor-adjacent ... far end; reverse to start far.
    std::vector<int> reversed(order.rbegin(), order.rend());
    for (int i : reversed) {
      // Join variable shared with the next pattern toward the anchor.
      const VarId toward_anchor =
          step < 0 ? query_.links()[i] : query_.links()[i - 1];
      const VarId away =
          step < 0 ? (i > 0 ? query_.links()[i - 1] : kNoVar)
                   : (i + 1 < query_.NumPatterns() ? query_.links()[i]
                                                   : kNoVar);
      const int toward_component =
          query_.patterns()[i].ComponentOf(toward_anchor);
      const int away_component =
          away == kNoVar ? -1 : query_.patterns()[i].ComponentOf(away);
      FlatAccumulator<TermId, uint64_t> next;
      const PatternSample& sample = samples_[i];
      const TrieIndex& index = indexes_.Index(sample.access.order());
      for (uint32_t k = 0; k < sample.sampled; ++k) {
        const Triple& t = index.TripleAt(sample.positions[k]);
        if (!sample.filter.empty() && !sample.filter.Pass(indexes_, t)) {
          continue;
        }
        uint64_t incoming = 1;
        if (!first) {
          const uint64_t* it = counts.Find(t[away_component]);
          if (it == nullptr) continue;
          incoming = *it;
        }
        next.FindOrAdd(t[toward_component]) += incoming;
      }
      counts = std::move(next);
      first = false;
    }
    return counts;
  };

  int left_component = -1;
  int right_component = -1;
  FlatAccumulator<TermId, uint64_t> left;
  FlatAccumulator<TermId, uint64_t> right;
  if (anchor > 0) {
    left = arm_counts(anchor - 1, -1);
    left_component =
        query_.patterns()[anchor].ComponentOf(query_.links()[anchor - 1]);
  }
  if (anchor + 1 < query_.NumPatterns()) {
    right = arm_counts(anchor + 1, +1);
    right_component =
        query_.patterns()[anchor].ComponentOf(query_.links()[anchor]);
  }

  const PatternSample& anchor_sample = samples_[anchor];
  const TrieIndex& index = indexes_.Index(anchor_sample.access.order());
  FlatAccumulator<uint64_t, uint8_t> seen_pairs;
  for (uint32_t k = 0; k < anchor_sample.sampled; ++k) {
    const Triple& t = index.TripleAt(anchor_sample.positions[k]);
    if (!anchor_sample.filter.empty() &&
        !anchor_sample.filter.Pass(indexes_, t)) {
      continue;
    }
    uint64_t left_count = 1;
    if (left_component >= 0) {
      const uint64_t* it = left.Find(t[left_component]);
      if (it == nullptr) continue;
      left_count = *it;
    }
    uint64_t right_count = 1;
    if (right_component >= 0) {
      const uint64_t* it = right.Find(t[right_component]);
      if (it == nullptr) continue;
      right_count = *it;
    }
    const TermId a = t[alpha_component];
    if (query_.distinct()) {
      const uint64_t pair = PackPair(a, t[beta_component]);
      if (!seen_pairs.Contains(pair)) {
        seen_pairs.FindOrAdd(pair) = 1;
        estimates_.FindOrAdd(a) += 1.0;
      }
    } else {
      estimates_.FindOrAdd(a) +=
          static_cast<double>(left_count) * static_cast<double>(right_count);
    }
  }
  for (std::size_t i = 0; i < estimates_.size(); ++i) {
    estimates_.ValueAt(i) *= scale;
  }
}

double RippleJoin::Estimate(TermId group) const {
  const double* found = estimates_.Find(group);
  return found == nullptr ? 0.0 : *found;
}

// kgoa-lint: allow(unordered-in-hot-path) result type only
std::unordered_map<TermId, double> RippleJoin::Estimates() const {
  std::unordered_map<TermId, double> out;  // kgoa-lint: allow(unordered-in-hot-path)
  out.reserve(estimates_.size());
  for (const auto& item : estimates_.items()) out[item.key] = item.value;
  return out;
}

}  // namespace kgoa
