// Ripple Join (Haas & Hellerstein, SIGMOD 1999) — the classic online
// aggregation algorithm for joins, included as the historical baseline the
// paper builds on (section II; Wander Join was introduced as its
// successor, and the paper borrows Ripple Join's seen-set technique for
// Wander Join's distinct mode).
//
// Each round enlarges a uniform without-replacement sample of every
// pattern's extent and re-evaluates the grouped join over the samples; the
// estimate scales the sampled count by the product of the sampling rates'
// inverses. For COUNT this estimator is unbiased; for COUNT DISTINCT the
// scaled estimator is biased (distinct values do not scale linearly),
// which is precisely the gap Audit Join's estimator closes.
//
// This implementation exploits the chain shape to evaluate each round in
// time linear in the total sample size (dynamic programming over flat
// open-addressing arenas along the chain), so its per-round cost grows
// linearly rather than quadratically; convergence behaviour is the
// classic one.
#ifndef KGOA_OLA_RIPPLE_H_
#define KGOA_OLA_RIPPLE_H_

#include <cstdint>
#include <unordered_map>  // kgoa-lint: allow(unordered-in-hot-path) result type only
#include <vector>

#include "src/index/flat_table.h"
#include "src/index/index_set.h"
#include "src/join/access.h"
#include "src/join/filter.h"
#include "src/query/chain_query.h"
#include "src/util/rng.h"

namespace kgoa {

class RippleJoin {
 public:
  struct Options {
    uint64_t seed = 1;
    // Tuples added to each pattern's sample per round.
    uint32_t batch_per_round = 256;
  };

  RippleJoin(const IndexSet& indexes, const ChainQuery& query)
      : RippleJoin(indexes, query, Options()) {}
  RippleJoin(const IndexSet& indexes, const ChainQuery& query,
             Options options);

  RippleJoin(const RippleJoin&) = delete;
  RippleJoin& operator=(const RippleJoin&) = delete;

  // Enlarges every sample and refreshes the estimates.
  void RunRound();

  uint64_t rounds() const { return rounds_; }

  // True once every sample covers its full extent (estimates are exact).
  bool exhausted() const;

  // Current estimate for `group` (0 when never seen).
  double Estimate(TermId group) const;
  // Materialized copy for callers and tests; the hot per-round loops work
  // on the flat arena.
  // kgoa-lint: allow(unordered-in-hot-path) result type only
  std::unordered_map<TermId, double> Estimates() const;

  // Fraction of the smallest-coverage extent that has been sampled.
  double MinCoverage() const;

 private:
  struct PatternSample {
    PatternAccess access;
    FilterSet filter;
    Range extent;                     // full constant range
    std::vector<uint32_t> positions;  // progressively shuffled
    uint32_t sampled = 0;             // prefix of `positions` in the sample
  };

  void Recompute();

  // kgoa-lint: allow(raw-graph-retention) walk engine scoped inside one pinned serving call
  const IndexSet& indexes_;
  ChainQuery query_;
  Options options_;
  std::vector<PatternSample> samples_;
  Rng rng_;
  uint64_t rounds_ = 0;
  // Per-group scaled counts of the latest round, rebuilt by Recompute
  // (Clear is O(live entries), so round-over-round reuse is cheap).
  FlatAccumulator<TermId, double> estimates_;
};

}  // namespace kgoa

#endif  // KGOA_OLA_RIPPLE_H_
