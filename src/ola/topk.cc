#include "src/ola/topk.h"

#include <algorithm>
#include <vector>

namespace kgoa {

namespace {

struct GroupBound {
  TermId group;
  double estimate;
  double ci;  // half-width
};

}  // namespace

void TopKTracker::Update(const GroupedEstimates& merged) {
  if (!enabled()) return;
  if (merged.walks() < options_.min_walks) return;

  std::vector<GroupBound> bounds;
  {
    const auto estimates = merged.Estimates();
    bounds.reserve(estimates.size());
    for (const auto& [group, estimate] : estimates) {
      bounds.push_back({group, estimate, merged.CiHalfWidth(group)});
    }
  }
  // Estimates() iterates an unordered map; the (estimate desc, group asc)
  // sort makes the displayed set and every bound independent of that
  // order.
  std::sort(bounds.begin(), bounds.end(),
            [](const GroupBound& a, const GroupBound& b) {
              if (a.estimate != b.estimate) return a.estimate > b.estimate;
              return a.group < b.group;
            });

  const std::size_t displayed =
      std::min<std::size_t>(static_cast<std::size_t>(options_.k),
                            bounds.size());
  // Lower bound on the K-th displayed estimate. Negative lower bounds
  // clamp to 0: estimates are sums of non-negative contributions, so no
  // group can finish below 0 and a negative bound prunes nothing.
  double kth_lower = 0;
  if (displayed == static_cast<std::size_t>(options_.k)) {
    kth_lower = std::max(
        0.0, bounds[displayed - 1].estimate - bounds[displayed - 1].ci);
  }

  bool converged = displayed > 0;
  for (std::size_t i = 0; i < displayed; ++i) {
    converged = converged && bounds[i].estimate > 0 &&
                bounds[i].ci <= options_.ci_target * bounds[i].estimate;
  }

  std::shared_ptr<GroupFilter> filter;
  uint64_t pruned = 0;
  for (std::size_t i = displayed; i < bounds.size(); ++i) {
    const double hi = bounds[i].estimate + bounds[i].ci;
    if (kth_lower > 0 && hi < kth_lower) {
      ++pruned;
      if (options_.prune) {
        if (filter == nullptr) filter = std::make_shared<GroupFilter>();
        filter->pruned_.FindOrAdd(bounds[i].group) = 1;
      }
    } else {
      // A seen non-displayed group still overlapping the K-th lower
      // bound: the displayed chart is not yet settled.
      converged = false;
    }
  }

  {
    MutexLock lock(mutex_);
    kth_lower_ = kth_lower;
    pruned_count_ = pruned;
    if (options_.prune) {
      // Keep the previous filter when this round prunes nothing new —
      // engines hold snapshots, and an empty swap would only churn them.
      if (filter != nullptr) filter_ = std::move(filter);
    }
  }
  converged_.store(converged, std::memory_order_release);
}

}  // namespace kgoa
