// Wander Join (Li, Wu, Yi & Zhao, SIGMOD 2016) — online aggregation via
// random walks, section IV-C of the paper.
//
// Each walk samples one tuple per pattern along the walk order, uniformly
// among the tuples consistent with the previously sampled tuple. A
// completed walk gamma contributes the Horvitz-Thompson estimate
// C_wj(gamma) = prod d_i = 1 / Pr(gamma) to its group's estimator; a walk
// that dead-ends is rejected and contributes zero. Grouped estimates divide
// by the total number of walks.
//
// Wander Join has no unbiased estimator for COUNT DISTINCT; following the
// paper's experimental setup, this implementation augments it with the
// Ripple Join technique (Haas & Hellerstein): remember the (group, beta)
// pairs seen so far and reject re-sampled duplicates. That estimator is
// biased — demonstrating this is part of the paper's motivation for Audit
// Join.
#ifndef KGOA_OLA_WANDER_H_
#define KGOA_OLA_WANDER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/index/flat_table.h"
#include "src/index/index_set.h"
#include "src/ola/estimator.h"
#include "src/ola/topk.h"
#include "src/ola/walk_plan.h"
#include "src/query/chain_query.h"
#include "src/util/rng.h"

namespace kgoa {

class WanderJoin {
 public:
  struct Options {
    uint64_t seed = 1;
    // Walk order over pattern indices; empty = forward. The evaluation
    // harness selects the best candidate per query like the paper does.
    std::vector<int> walk_order;
    // Walks advanced per structure-of-arrays batch (0 = kDefaultWalkBatch,
    // 1 = unbatched). Purely a throughput knob: per-walk counter-derived
    // RNG (WalkSeed) makes estimates bit-identical for every width.
    uint32_t batch_walks = 0;
  };

  WanderJoin(const IndexSet& indexes, const ChainQuery& query)
      : WanderJoin(indexes, query, Options()) {}
  WanderJoin(const IndexSet& indexes, const ChainQuery& query,
             Options options);

  // The walk plan points into the stored query; not copyable or movable.
  WanderJoin(const WanderJoin&) = delete;
  WanderJoin& operator=(const WanderJoin&) = delete;

  // Performs one random walk and updates the estimators.
  void RunOneWalk();
  void RunWalks(uint64_t count);

  const GroupedEstimates& estimates() const { return estimates_; }
  const WalkPlan& plan() const { return plan_; }

  // Walks whose sampled (group, beta) pair had been seen before (distinct
  // mode only). These contribute zero but are not dead-end rejections.
  uint64_t duplicate_walks() const { return duplicates_; }

  // Walks ended early because their group was pruned from top-K
  // contention (see src/ola/topk.h).
  uint64_t pruned_walks() const { return pruned_; }

  // Walks executed through the structure-of-arrays batched path.
  uint64_t batched_walks() const { return batched_walks_; }

  // Installs (nullptr: clears) a top-K group filter: once the walk binds
  // its group-by value to a pruned group, it ends with a zero
  // contribution instead of sampling the remaining steps.
  void SetGroupFilter(std::shared_ptr<const GroupFilter> filter) {
    group_filter_ = std::move(filter);
  }

  // Verification hook: enumerates every possible walk with its probability
  // and the contribution it would add (ignoring the distinct seen-set,
  // which makes walks non-independent). Used by the unbiasedness property
  // tests: the probability-weighted sum of contributions per group must
  // equal the exact non-distinct count.
  void EnumerateAllWalks(
      const std::function<void(double probability, TermId group,
                               double contribution)>& callback) const;

 private:
  // `batch` walks advanced level-synchronously; bit-identical to the
  // unbatched loop (see the .cc walk-order argument).
  void RunWalkBatch(uint32_t batch);

  // kgoa-lint: allow(raw-graph-retention) walk engine scoped inside one pinned serving call
  const IndexSet& indexes_;
  ChainQuery query_;
  Options options_;
  WalkPlan plan_;
  GroupedEstimates estimates_;
  // Re-seeded per walk from WalkSeed(options_.seed, walk_counter_).
  Rng rng_;
  uint64_t walk_counter_ = 0;
  std::vector<TermId> state_;
  // Ripple seen-set, probed once per completed distinct walk. Flat table
  // keyed by PackPair(group, beta); the ~0 sentinel is unreachable (it
  // would need group = beta = kInvalidTerm, impossible for a completed
  // walk).
  FlatTable<uint64_t, uint8_t> seen_pairs_{~0ull};
  uint64_t duplicates_ = 0;
  std::shared_ptr<const GroupFilter> group_filter_;
  int alpha_record_step_ = -1;  // step binding the group-by slot
  uint64_t pruned_ = 0;
  uint64_t batched_walks_ = 0;

  // Structure-of-arrays batch state, reused across batches. Lane index ==
  // walk order within the batch.
  enum LaneState : uint8_t { kLaneAlive = 0, kLaneDone = 1, kLaneRejected = 2 };
  std::vector<Rng> batch_rng_;
  std::vector<TermId> batch_state_;  // walk-major: [lane * num_slots + slot]
  std::vector<double> batch_weight_;
  std::vector<TermId> batch_bound_;
  std::vector<Range> batch_range_;
  std::vector<uint32_t> batch_pos_;
  std::vector<uint8_t> batch_done_;   // LaneState
  std::vector<uint32_t> batch_live_;  // alive lane indices, walk order
};

}  // namespace kgoa

#endif  // KGOA_OLA_WANDER_H_
