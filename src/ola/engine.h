// Engine-agnostic online-aggregation interface.
//
// The serving core (src/ola/parallel.h) time-slices many concurrent chart
// jobs over one worker pool. Doing that per engine type would wire every
// engine's quirks into the scheduler, so the executor instead talks to
// this minimal interface — construct, RunWalks(n), read the partial
// estimates, read the work counters — and each of the repo's three OLA
// engines implements it:
//
//  * Audit Join (src/core/audit.h)  — the paper's estimator; walk = one
//    random walk, possibly tipped into an exact partial computation.
//  * Wander Join (src/ola/wander.h) — walk = one random walk.
//  * Ripple Join (src/ola/ripple.h) — walk-quantum = one sampling round
//    (batch_per_round tuples added to every pattern's extent sample).
//
// The `mergeable()` capability is what keeps the scheduler honest about
// semantics rather than special-casing engines: Audit and Wander walks are
// i.i.d., so independently seeded engines merge exactly via
// GroupedEstimates::Merge (the basis of the parallel walk-budget
// determinism contract). Ripple's without-replacement extent samples do
// not merge across engines, so a Ripple job runs on one logical worker and
// still benefits from the pool's time-slicing and cancellation.
#ifndef KGOA_OLA_ENGINE_H_
#define KGOA_OLA_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/index/index_set.h"
#include "src/ola/estimator.h"
#include "src/query/chain_query.h"

namespace kgoa {

class GroupFilter;
class ReachProbability;

// Per-engine work counters, merged across workers. Counters an engine does
// not track stay zero (e.g. tipping counters under Wander Join).
//
// The reach_* counters describe the reach-probability cache of the
// distinct estimator. With a shared cache they are filled once per run by
// the executor (as this run's delta over the cache's atomic shard
// counters) rather than per worker; they are exact totals but
// scheduling-dependent — see src/core/reach.h — so they are excluded from
// the walk-budget determinism contract.
struct OlaCounters {
  uint64_t tipped_walks = 0;     // Audit Join: walks finished by tipping
  uint64_t full_walks = 0;       // walks sampled to completion
  uint64_t tip_aborts = 0;       // Audit Join: enumeration-cap aborts
  uint64_t ctj_cache_hits = 0;   // Audit Join: suffix-count memo hits
  uint64_t duplicate_walks = 0;  // Wander Join distinct mode
  uint64_t pruned_walks = 0;     // walks cut short by the top-K filter
  uint64_t batched_walks = 0;    // walks run through the SoA batched path
  uint64_t reach_hits = 0;       // reach cache: memoized lookups served
  uint64_t reach_misses = 0;     // reach cache: entries computed
  uint64_t reach_contention = 0;  // reach cache: contended shard inserts
  uint64_t reach_entries = 0;     // reach cache: resident entries (gauge)

  void Merge(const OlaCounters& other) {
    tipped_walks += other.tipped_walks;
    full_walks += other.full_walks;
    tip_aborts += other.tip_aborts;
    ctj_cache_hits += other.ctj_cache_hits;
    duplicate_walks += other.duplicate_walks;
    pruned_walks += other.pruned_walks;
    batched_walks += other.batched_walks;
    reach_hits += other.reach_hits;
    reach_misses += other.reach_misses;
    reach_contention += other.reach_contention;
    // A gauge, not a rate: max keeps the merged value meaningful whether
    // the workers shared one cache or owned private ones.
    reach_entries = reach_entries > other.reach_entries
                        ? reach_entries
                        : other.reach_entries;
  }
};

enum class OlaEngineKind { kAudit, kWander, kRipple };

const char* OlaEngineName(OlaEngineKind kind);

// Whether engines of this kind merge across independently seeded
// instances (see OlaEngine::mergeable). Lets the scheduler clamp a job's
// logical workers before paying for engine construction.
bool OlaEngineKindMergeable(OlaEngineKind kind);

struct OlaEngineOptions {
  OlaEngineKind kind = OlaEngineKind::kAudit;
  uint64_t seed = 1;
  // Walk order over pattern indices; empty = engine default.
  std::vector<int> walk_order;
  double tipping_threshold = 64.0;   // Audit Join only
  uint32_t ripple_batch = 256;       // Ripple Join: tuples per round
  // Audit Join distinct mode: audit against this externally owned
  // reach-probability cache instead of a private one. Must match the
  // engine's (query, walk order) and outlive it — see src/core/reach.h.
  ReachProbability* shared_reach = nullptr;
  // Walk-sampling engines: walks advanced per structure-of-arrays batch
  // (0 = kDefaultWalkBatch, 1 = unbatched). Estimates are bit-identical
  // for every width (per-walk counter-derived RNG); ignored by Ripple.
  uint32_t batch_walks = 0;
};

// One worker's engine. Implementations are not thread-safe: the serving
// core guarantees at most one thread drives an engine at a time (a job
// slot is checked out for the duration of a quantum).
class OlaEngine {
 public:
  virtual ~OlaEngine();

  // Runs `count` walk-quanta. For the walk-sampling engines a quantum is
  // one random walk; for Ripple it is one sampling round.
  virtual void RunWalks(uint64_t count) = 0;

  // Current partial estimates. The reference stays valid until the next
  // RunWalks call; partials from equally configured engines with distinct
  // seeds merge exactly iff mergeable().
  virtual const GroupedEstimates& estimates() const = 0;

  // Adds this engine's work counters into `out`.
  virtual void FillCounters(OlaCounters* out) const = 0;

  // Whether independently seeded instances of this engine produce i.i.d.
  // partials that GroupedEstimates::Merge combines exactly. False for
  // Ripple (without-replacement samples): such engines run on exactly one
  // logical worker per job.
  virtual bool mergeable() const = 0;

  virtual OlaEngineKind kind() const = 0;

  // Installs (or clears, with nullptr) a top-K group filter: walks whose
  // group-by value is already bound to a pruned group end early with a
  // zero contribution (counted in OlaCounters::pruned_walks). Default is
  // a no-op for engines without a prune hook (Ripple). Called between
  // quanta by the slot's driving thread, never concurrently with
  // RunWalks.
  virtual void SetGroupFilter(std::shared_ptr<const GroupFilter> filter) {
    (void)filter;
  }
};

// Builds the engine for `options.kind`. The indexes must outlive the
// engine; the query is copied by the underlying engine.
std::unique_ptr<OlaEngine> MakeOlaEngine(const IndexSet& indexes,
                                         const ChainQuery& query,
                                         const OlaEngineOptions& options);

}  // namespace kgoa

#endif  // KGOA_OLA_ENGINE_H_
