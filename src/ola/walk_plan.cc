#include "src/ola/walk_plan.h"

#include <algorithm>

#include "src/util/contract.h"

namespace kgoa {

WalkPlan WalkPlan::Compile(const ChainQuery& query,
                           std::vector<int> pattern_order) {
  const int n = query.NumPatterns();
  if (pattern_order.empty()) {
    for (int i = 0; i < n; ++i) pattern_order.push_back(i);
  }
  KGOA_CHECK_MSG(static_cast<int>(pattern_order.size()) == n,
                 "walk order must cover every pattern");

  WalkPlan plan;
  plan.query_ = &query;
  plan.pattern_order_ = pattern_order;
  plan.step_of_.assign(n, -1);

  // One tracked slot per query variable.
  plan.slot_vars_ = query.vars();
  plan.alpha_slot_ = plan.SlotOf(query.alpha());
  plan.beta_slot_ = plan.SlotOf(query.beta());
  KGOA_CHECK(plan.alpha_slot_ >= 0 && plan.beta_slot_ >= 0);

  std::vector<bool> var_bound(plan.slot_vars_.size(), false);
  plan.slot_recorded_at_.assign(plan.slot_vars_.size(), -1);
  int covered_lo = pattern_order[0];
  int covered_hi = pattern_order[0];

  for (int step_idx = 0; step_idx < n; ++step_idx) {
    const int pi = pattern_order[step_idx];
    KGOA_CHECK_MSG(plan.step_of_[pi] < 0, "pattern repeated in walk order");
    plan.step_of_[pi] = step_idx;

    WalkStep step;
    step.pattern_index = pi;

    if (step_idx == 0) {
      step.in_var = kNoVar;
    } else if (pi == covered_lo - 1) {
      step.in_var = query.links()[pi];  // link between pi and pi + 1
      covered_lo = pi;
    } else if (pi == covered_hi + 1) {
      step.in_var = query.links()[pi - 1];  // link between pi - 1 and pi
      covered_hi = pi;
    } else {
      KGOA_CHECK_MSG(false, "walk order is not chain-contiguous");
    }

    step.access = PatternAccess::Compile(query.patterns()[pi], step.in_var);
    step.filter = FilterSet(query.filters(pi));
    if (step.in_var != kNoVar) {
      step.in_slot = plan.SlotOf(step.in_var);
      KGOA_DCHECK(step.in_slot >= 0 && var_bound[step.in_slot]);
    }

    for (VarId v : query.patterns()[pi].Vars()) {
      const int slot = plan.SlotOf(v);
      if (v == step.in_var || var_bound[slot]) continue;
      step.records.push_back(WalkStep::Record{
          query.patterns()[pi].ComponentOf(v), slot});
      var_bound[slot] = true;
      plan.slot_recorded_at_[slot] = step_idx;
    }
    plan.steps_.push_back(std::move(step));
  }
  plan.parent_step_.assign(n, -1);
  for (int q = 1; q < n; ++q) {
    plan.parent_step_[q] =
        plan.slot_recorded_at_[plan.steps_[q].in_slot];
    KGOA_CHECK(plan.parent_step_[q] >= 0 && plan.parent_step_[q] < q);
  }
  return plan;
}

bool WalkPlan::SingleSegmentFrom(int q) const {
  for (int r = q + 1; r < NumSteps(); ++r) {
    if (parent_step_[r] != r - 1) return false;
  }
  return true;
}

int WalkPlan::SlotOf(VarId v) const {
  for (std::size_t i = 0; i < slot_vars_.size(); ++i) {
    if (slot_vars_[i] == v) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::vector<int>> CandidateWalkOrders(int num_patterns) {
  std::vector<std::vector<int>> orders;
  for (int start = 0; start < num_patterns; ++start) {
    std::vector<int> right_first{start};
    for (int i = start + 1; i < num_patterns; ++i) right_first.push_back(i);
    for (int i = start - 1; i >= 0; --i) right_first.push_back(i);

    std::vector<int> left_first{start};
    for (int i = start - 1; i >= 0; --i) left_first.push_back(i);
    for (int i = start + 1; i < num_patterns; ++i) left_first.push_back(i);

    for (auto* order : {&right_first, &left_first}) {
      if (std::find(orders.begin(), orders.end(), *order) == orders.end()) {
        orders.push_back(std::move(*order));
      }
    }
  }
  return orders;
}

}  // namespace kgoa
