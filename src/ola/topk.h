// Top-K chart serving: a running lower bound on the K-th displayed
// group's estimate, group pruning against it, and the "displayed chart
// converged" signal.
//
// A chart rendered from GroupedEstimates only shows the K largest
// groups. Once the K-th displayed group's confidence interval has a
// lower bound L, any group whose upper bound sits below L can never
// enter the display — walks that land on it are wasted, and audits can
// skip its whole equal-group runs. TopKTracker maintains L and the
// pruned set from the periodically merged slot partials; engines consult
// an immutable GroupFilter snapshot (swapped atomically under the
// tracker's mutex) so the walk hot path takes no locks.
//
// Pruning changes which walks complete, so it is restricted to
// deadline-mode jobs; budget-mode jobs keep the tracker in observe-only
// mode (the convergence signal without the filter) to preserve the
// bit-identical-across-pool-sizes contract.
#ifndef KGOA_OLA_TOPK_H_
#define KGOA_OLA_TOPK_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/index/flat_table.h"
#include "src/ola/estimator.h"
#include "src/rdf/types.h"
#include "src/util/sync.h"

namespace kgoa {

struct TopKOptions {
  // Number of displayed chart groups. 0 disables top-K serving entirely.
  int k = 0;
  // A displayed group counts as converged when its CI half-width is
  // within this fraction of its estimate.
  double ci_target = 0.05;
  // Skip walks (and audit runs) bound to groups that can no longer enter
  // the display. Forced off for budget-mode jobs.
  bool prune = true;
  // No pruning and no convergence signal before this many walks: early
  // intervals are too loose to trust the K-th lower bound.
  uint64_t min_walks = 1024;
};

// Immutable snapshot of the groups pruned out of top-K contention.
// Groups never seen by any walk are never pruned (their bounds are
// unknown), so Pruned() is exact, not conservative-in-the-wrong-
// direction: a false `true` is impossible.
class GroupFilter {
 public:
  bool Pruned(TermId group) const { return pruned_.Contains(group); }
  std::size_t size() const { return pruned_.size(); }

 private:
  friend class TopKTracker;
  FlatAccumulator<TermId, uint8_t> pruned_;
};

// Tracks the displayed top-K set, the K-th lower bound, the pruned
// filter and the displayed-convergence flag. Update() is called with the
// merged (slot-ordered) estimates under the serving core's snapshot
// pacing; readers take FilterSnapshot() / displayed_converged() from any
// thread.
class TopKTracker {
 public:
  explicit TopKTracker(TopKOptions options) : options_(options) {}

  TopKTracker(const TopKTracker&) = delete;
  TopKTracker& operator=(const TopKTracker&) = delete;

  bool enabled() const { return options_.k > 0; }
  const TopKOptions& options() const { return options_; }

  // Recomputes bounds from a merged estimate snapshot. Displayed set =
  // top K by (estimate desc, group id asc) — the id tiebreak keeps the
  // set deterministic. Pruned = {g not displayed : hi(g) < lo(K-th)}.
  // Converged = walks >= min_walks, every displayed group's relative CI
  // within ci_target, and every seen non-displayed group separated.
  void Update(const GroupedEstimates& merged);

  // Current filter; nullptr when pruning is off or nothing is pruned
  // yet. The snapshot is immutable — engines may read it lock-free for a
  // whole quantum.
  std::shared_ptr<const GroupFilter> FilterSnapshot() const {
    MutexLock lock(mutex_);
    return filter_;
  }

  bool displayed_converged() const {
    return converged_.load(std::memory_order_acquire);
  }

  double kth_lower_bound() const {
    MutexLock lock(mutex_);
    return kth_lower_;
  }

  uint64_t pruned_groups() const {
    MutexLock lock(mutex_);
    return pruned_count_;
  }

 private:
  const TopKOptions options_;
  mutable Mutex mutex_;
  // The published filter is an immutable snapshot: the pointer swap is
  // guarded; the pointee never mutates after publication, so engines
  // read it lock-free for a whole quantum.
  std::shared_ptr<const GroupFilter> filter_ KGOA_GUARDED_BY(mutex_);
  double kth_lower_ KGOA_GUARDED_BY(mutex_) = 0;
  uint64_t pruned_count_ KGOA_GUARDED_BY(mutex_) = 0;
  std::atomic<bool> converged_{false};
};

}  // namespace kgoa

#endif  // KGOA_OLA_TOPK_H_
