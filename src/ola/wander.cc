#include "src/ola/wander.h"

#include "src/util/contract.h"

namespace kgoa {

WanderJoin::WanderJoin(const IndexSet& indexes, const ChainQuery& query,
                       Options options)
    : indexes_(indexes),
      query_(query),
      plan_(WalkPlan::Compile(query_, options.walk_order)),
      rng_(options.seed),
      state_(plan_.num_slots(), kInvalidTerm),
      alpha_record_step_(plan_.RecordStepOfSlot(plan_.alpha_slot())) {}

void WanderJoin::RunOneWalk() {
  double weight = 1.0;  // prod d_i = 1 / Pr(walk so far)
  for (int q = 0; q < plan_.NumSteps(); ++q) {
    const WalkStep& step = plan_.steps()[q];
    // Top-K prune: the previous step bound the group-by value to a group
    // ruled out of the displayed chart — end the walk with a zero
    // contribution before resolving this step.
    if (group_filter_ != nullptr && q == alpha_record_step_ + 1 &&
        group_filter_->Pruned(state_[plan_.alpha_slot()])) {
      ++pruned_;
      estimates_.EndWalk(/*rejected=*/false);
      return;
    }
    const TermId bound =
        step.in_slot >= 0 ? state_[step.in_slot] : kInvalidTerm;
    const Range range = step.access.Resolve(indexes_, bound);
    if (range.empty()) {
      estimates_.EndWalk(/*rejected=*/true);
      return;
    }
    weight *= static_cast<double>(range.size());
    const uint32_t pos =
        range.begin + static_cast<uint32_t>(rng_.Below(range.size()));
    const Triple& t = indexes_.Index(step.access.order()).TripleAt(pos);
    if (!step.filter.empty() && !step.filter.Pass(indexes_, t)) {
      estimates_.EndWalk(/*rejected=*/true);
      return;
    }
    for (const WalkStep::Record& record : step.records) {
      state_[record.slot] = t[record.component];
    }
  }

  // A completed walk's weight is a product of non-empty fan-outs, so the
  // inverse sampling probability is at least one.
  KGOA_DCHECK_GE(weight, 1.0);
  const TermId group = state_[plan_.alpha_slot()];
  // Group bound only by the final step: the in-loop check never saw it.
  if (group_filter_ != nullptr &&
      alpha_record_step_ + 1 == plan_.NumSteps() &&
      group_filter_->Pruned(group)) {
    ++pruned_;
    estimates_.EndWalk(/*rejected=*/false);
    return;
  }
  if (query_.distinct()) {
    // Ripple-Join style: duplicates of an already-seen (group, beta) pair
    // are rejected (contribute zero).
    const uint64_t pair = PackPair(group, state_[plan_.beta_slot()]);
    bool inserted = false;
    seen_pairs_.FindOrInsert(pair, &inserted);
    if (inserted) {
      estimates_.AddContribution(group, weight);
    } else {
      ++duplicates_;
    }
  } else {
    estimates_.AddContribution(group, weight);
  }
  estimates_.EndWalk(/*rejected=*/false);
}

void WanderJoin::RunWalks(uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) RunOneWalk();
}

void WanderJoin::EnumerateAllWalks(
    const std::function<void(double, TermId, double)>& callback) const {
  KGOA_CHECK_MSG(!query_.distinct(),
                 "exhaustive expectation is defined for the non-distinct "
                 "estimator only (the distinct seen-set is stateful)");
  std::vector<TermId> state(plan_.num_slots(), kInvalidTerm);

  auto walk = [&](auto&& self, int step_idx, double probability,
                  double weight) -> void {
    KGOA_DCHECK_PROB_POS(probability);
    if (step_idx == plan_.NumSteps()) {
      callback(probability, state[plan_.alpha_slot()], weight);
      return;
    }
    const WalkStep& step = plan_.steps()[step_idx];
    const TermId bound =
        step.in_slot >= 0 ? state[step.in_slot] : kInvalidTerm;
    const Range range = step.access.Resolve(indexes_, bound);
    if (range.empty()) {
      // Rejected walk: contributes zero with this probability mass.
      callback(probability, kInvalidTerm, 0.0);
      return;
    }
    const double d = static_cast<double>(range.size());
    const TrieIndex& index = indexes_.Index(step.access.order());
    for (uint32_t pos = range.begin; pos < range.end; ++pos) {
      const Triple& t = index.TripleAt(pos);
      if (!step.filter.empty() && !step.filter.Pass(indexes_, t)) {
        callback(probability / d, kInvalidTerm, 0.0);  // rejected branch
        continue;
      }
      for (const WalkStep::Record& record : step.records) {
        state[record.slot] = t[record.component];
      }
      self(self, step_idx + 1, probability / d, weight * d);
    }
  };
  walk(walk, 0, 1.0, 1.0);
}

}  // namespace kgoa
