#include "src/ola/wander.h"

#include <algorithm>
#include <span>

#include "src/index/kernels.h"
#include "src/util/contract.h"

namespace kgoa {

WanderJoin::WanderJoin(const IndexSet& indexes, const ChainQuery& query,
                       Options options)
    : indexes_(indexes),
      query_(query),
      options_(options),
      plan_(WalkPlan::Compile(query_, options.walk_order)),
      rng_(options.seed),
      state_(plan_.num_slots(), kInvalidTerm),
      alpha_record_step_(plan_.RecordStepOfSlot(plan_.alpha_slot())) {}

void WanderJoin::RunOneWalk() {
  rng_.Seed(WalkSeed(options_.seed, walk_counter_++));
  double weight = 1.0;  // prod d_i = 1 / Pr(walk so far)
  for (int q = 0; q < plan_.NumSteps(); ++q) {
    const WalkStep& step = plan_.steps()[q];
    // Top-K prune: the previous step bound the group-by value to a group
    // ruled out of the displayed chart — end the walk with a zero
    // contribution before resolving this step.
    if (group_filter_ != nullptr && q == alpha_record_step_ + 1 &&
        group_filter_->Pruned(state_[plan_.alpha_slot()])) {
      ++pruned_;
      estimates_.EndWalk(/*rejected=*/false);
      return;
    }
    const TermId bound =
        step.in_slot >= 0 ? state_[step.in_slot] : kInvalidTerm;
    const Range range = step.access.Resolve(indexes_, bound);
    if (range.empty()) {
      estimates_.EndWalk(/*rejected=*/true);
      return;
    }
    weight *= static_cast<double>(range.size());
    const uint32_t pos =
        range.begin + static_cast<uint32_t>(rng_.Below(range.size()));
    const Triple& t = indexes_.Index(step.access.order()).TripleAt(pos);
    if (!step.filter.empty() && !step.filter.Pass(indexes_, t)) {
      estimates_.EndWalk(/*rejected=*/true);
      return;
    }
    for (const WalkStep::Record& record : step.records) {
      state_[record.slot] = t[record.component];
    }
  }

  // A completed walk's weight is a product of non-empty fan-outs, so the
  // inverse sampling probability is at least one.
  KGOA_DCHECK_GE(weight, 1.0);
  const TermId group = state_[plan_.alpha_slot()];
  // Group bound only by the final step: the in-loop check never saw it.
  if (group_filter_ != nullptr &&
      alpha_record_step_ + 1 == plan_.NumSteps() &&
      group_filter_->Pruned(group)) {
    ++pruned_;
    estimates_.EndWalk(/*rejected=*/false);
    return;
  }
  if (query_.distinct()) {
    // Ripple-Join style: duplicates of an already-seen (group, beta) pair
    // are rejected (contribute zero).
    const uint64_t pair = PackPair(group, state_[plan_.beta_slot()]);
    bool inserted = false;
    seen_pairs_.FindOrInsert(pair, &inserted);
    if (inserted) {
      estimates_.AddContribution(group, weight);
    } else {
      ++duplicates_;
    }
  } else {
    estimates_.AddContribution(group, weight);
  }
  estimates_.EndWalk(/*rejected=*/false);
}

void WanderJoin::RunWalks(uint64_t count) {
  const uint32_t batch =
      options_.batch_walks == 0 ? kDefaultWalkBatch : options_.batch_walks;
  if (batch <= 1) {
    for (uint64_t i = 0; i < count; ++i) RunOneWalk();
    return;
  }
  uint64_t remaining = count;
  while (remaining > 0) {
    const uint32_t b =
        static_cast<uint32_t>(std::min<uint64_t>(batch, remaining));
    RunWalkBatch(b);
    remaining -= b;
  }
}

// Level-synchronous batch execution — the Wander Join specialization of
// AuditJoin::RunWalkBatch's phase structure (no tipping phases):
//   1. scalar prolog, walk order: top-K prune + bound extraction;
//   2. batched range resolve, hash probes prefetch-pipelined;
//   3. rejection + per-walk RNG position draw, walk order;
//   4. batched triple fetch + filter + record.
// Bit-identity with batch = 1: every walk draws from its own
// counter-derived stream (WalkSeed), and the only cross-walk state — the
// distinct mode's Ripple seen-set and the estimator — is touched solely in
// the completion loop at batch end, in walk order, so FindOrInsert and
// AddContribution sequences match the unbatched path exactly.
void WanderJoin::RunWalkBatch(uint32_t batch) {
  const int num_slots = plan_.num_slots();
  batch_rng_.resize(batch);
  batch_state_.assign(static_cast<std::size_t>(batch) * num_slots,
                      kInvalidTerm);
  batch_weight_.assign(batch, 1.0);
  batch_bound_.assign(batch, kInvalidTerm);
  batch_range_.assign(batch, Range{});
  batch_pos_.assign(batch, 0);
  batch_done_.assign(batch, kLaneAlive);
  for (uint32_t b = 0; b < batch; ++b) {
    batch_rng_[b].Seed(WalkSeed(options_.seed, walk_counter_ + b));
  }
  walk_counter_ += batch;
  batched_walks_ += batch;

  const auto lane_state = [&](uint32_t b) {
    return std::span<TermId>(batch_state_.data() +
                                 static_cast<std::size_t>(b) * num_slots,
                             static_cast<std::size_t>(num_slots));
  };

  uint32_t alive = batch;
  for (int q = 0; q < plan_.NumSteps() && alive > 0; ++q) {
    const WalkStep& step = plan_.steps()[q];

    // Phase 1: prune + bound extraction, walk order.
    batch_live_.clear();
    for (uint32_t b = 0; b < batch; ++b) {
      if (batch_done_[b] != kLaneAlive) continue;
      const std::span<TermId> state = lane_state(b);
      if (group_filter_ != nullptr && q == alpha_record_step_ + 1 &&
          group_filter_->Pruned(state[plan_.alpha_slot()])) {
        ++pruned_;
        batch_done_[b] = kLaneDone;
        --alive;
        continue;
      }
      batch_bound_[b] = step.in_slot >= 0 ? state[step.in_slot] : kInvalidTerm;
      batch_live_.push_back(b);
    }
    if (alive == 0) break;

    // Phase 2: batched resolve.
    kernels::PrefetchPipeline(
        batch_live_.size(),
        [&](std::size_t i) {
          step.access.Prefetch(indexes_, batch_bound_[batch_live_[i]]);
        },
        [&](std::size_t i) {
          const uint32_t b = batch_live_[i];
          batch_range_[b] = step.access.Resolve(indexes_, batch_bound_[b]);
        });

    // Phase 3: rejection + position draw, walk order.
    for (const uint32_t b : batch_live_) {
      const Range range = batch_range_[b];
      if (range.empty()) {
        batch_done_[b] = kLaneRejected;
        --alive;
        continue;
      }
      batch_weight_[b] *= static_cast<double>(range.size());
      batch_pos_[b] = range.begin +
                      static_cast<uint32_t>(batch_rng_[b].Below(range.size()));
    }
    if (alive == 0) break;

    // Phase 4: batched triple fetch + filter + record.
    batch_live_.clear();
    for (uint32_t b = 0; b < batch; ++b) {
      if (batch_done_[b] == kLaneAlive) batch_live_.push_back(b);
    }
    const TrieIndex& index = indexes_.Index(step.access.order());
    kernels::PrefetchPipeline(
        batch_live_.size(),
        [&](std::size_t i) { index.PrefetchTriple(batch_pos_[batch_live_[i]]); },
        [&](std::size_t i) {
          const uint32_t b = batch_live_[i];
          const Triple t = index.TripleAt(batch_pos_[b]);
          if (!step.filter.empty() && !step.filter.Pass(indexes_, t)) {
            batch_done_[b] = kLaneRejected;
            --alive;
            return;
          }
          const std::span<TermId> state = lane_state(b);
          for (const WalkStep::Record& record : step.records) {
            state[record.slot] = t[record.component];
          }
        });
  }

  // Completion loop, walk order: seen-set probes, contributions and
  // EndWalk in exactly the unbatched sequence.
  for (uint32_t b = 0; b < batch; ++b) {
    if (batch_done_[b] != kLaneAlive) {
      estimates_.EndWalk(/*rejected=*/batch_done_[b] == kLaneRejected);
      continue;
    }
    const std::span<TermId> state = lane_state(b);
    KGOA_DCHECK_GE(batch_weight_[b], 1.0);
    const TermId group = state[plan_.alpha_slot()];
    if (group_filter_ != nullptr &&
        alpha_record_step_ + 1 == plan_.NumSteps() &&
        group_filter_->Pruned(group)) {
      ++pruned_;
      estimates_.EndWalk(/*rejected=*/false);
      continue;
    }
    if (query_.distinct()) {
      const uint64_t pair = PackPair(group, state[plan_.beta_slot()]);
      bool inserted = false;
      seen_pairs_.FindOrInsert(pair, &inserted);
      if (inserted) {
        estimates_.AddContribution(group, batch_weight_[b]);
      } else {
        ++duplicates_;
      }
    } else {
      estimates_.AddContribution(group, batch_weight_[b]);
    }
    estimates_.EndWalk(/*rejected=*/false);
  }
}

void WanderJoin::EnumerateAllWalks(
    const std::function<void(double, TermId, double)>& callback) const {
  KGOA_CHECK_MSG(!query_.distinct(),
                 "exhaustive expectation is defined for the non-distinct "
                 "estimator only (the distinct seen-set is stateful)");
  std::vector<TermId> state(plan_.num_slots(), kInvalidTerm);

  auto walk = [&](auto&& self, int step_idx, double probability,
                  double weight) -> void {
    KGOA_DCHECK_PROB_POS(probability);
    if (step_idx == plan_.NumSteps()) {
      callback(probability, state[plan_.alpha_slot()], weight);
      return;
    }
    const WalkStep& step = plan_.steps()[step_idx];
    const TermId bound =
        step.in_slot >= 0 ? state[step.in_slot] : kInvalidTerm;
    const Range range = step.access.Resolve(indexes_, bound);
    if (range.empty()) {
      // Rejected walk: contributes zero with this probability mass.
      callback(probability, kInvalidTerm, 0.0);
      return;
    }
    const double d = static_cast<double>(range.size());
    const TrieIndex& index = indexes_.Index(step.access.order());
    for (uint32_t pos = range.begin; pos < range.end; ++pos) {
      const Triple& t = index.TripleAt(pos);
      if (!step.filter.empty() && !step.filter.Pass(indexes_, t)) {
        callback(probability / d, kInvalidTerm, 0.0);  // rejected branch
        continue;
      }
      for (const WalkStep::Record& record : step.records) {
        state[record.slot] = t[record.component];
      }
      self(self, step_idx + 1, probability / d, weight * d);
    }
  };
  walk(walk, 0, 1.0, 1.0);
}

}  // namespace kgoa
