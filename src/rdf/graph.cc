#include "src/rdf/graph.h"

#include <algorithm>

#include "src/rdf/vocab.h"
#include "src/util/contract.h"

namespace kgoa {

Graph Graph::Rebase(const Graph& base, std::vector<Triple> sorted) {
  KGOA_DCHECK_SORTED_BY(sorted.begin(), sorted.end(), SpoLess);
  Graph g;
  g.dict_ = base.dict_;
  g.rdf_type_ = base.rdf_type_;
  g.subclass_of_ = base.subclass_of_;
  g.owl_thing_ = base.owl_thing_;
  g.triples_ = std::move(sorted);
  return g;
}

std::vector<TermId> Graph::Properties() const {
  std::vector<TermId> props;
  for (const Triple& t : triples_) props.push_back(t.p);
  std::sort(props.begin(), props.end());
  props.erase(std::unique(props.begin(), props.end()), props.end());
  return props;
}

std::vector<TermId> Graph::Classes() const {
  std::vector<TermId> classes;
  for (const Triple& t : triples_) {
    if (t.p == rdf_type_) classes.push_back(t.o);
  }
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  return classes;
}

bool Graph::Contains(const Triple& t) const {
  return std::binary_search(triples_.begin(), triples_.end(), t, SpoLess);
}

GraphBuilder::GraphBuilder() = default;

void GraphBuilder::Add(TermId s, TermId p, TermId o) {
  KGOA_DCHECK(s != kInvalidTerm && p != kInvalidTerm && o != kInvalidTerm);
  triples_.push_back(Triple{s, p, o});
}

void GraphBuilder::AddSpelled(std::string_view s, std::string_view p,
                              std::string_view o) {
  Add(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o));
}

Graph GraphBuilder::Build() && {
  Graph g;
  g.rdf_type_ = dict_.Intern(vocab::kRdfType);
  g.subclass_of_ = dict_.Intern(vocab::kRdfsSubClassOf);
  g.owl_thing_ = dict_.Intern(vocab::kOwlThing);
  g.dict_ = std::make_shared<Dictionary>(std::move(dict_));
  std::sort(triples_.begin(), triples_.end(), SpoLess);
  triples_.erase(std::unique(triples_.begin(), triples_.end()),
                 triples_.end());
  // Everything downstream (index builds, the chained radix derivation)
  // assumes the base is (s,p,o)-sorted and duplicate-free.
  KGOA_DCHECK_SORTED_BY(triples_.begin(), triples_.end(), SpoLess);
  g.triples_ = std::move(triples_);
  return g;
}

}  // namespace kgoa
