#include "src/rdf/dictionary.h"

#include "src/util/contract.h"

namespace kgoa {

TermId Dictionary::Intern(std::string_view term) {
  auto it = ids_.find(term);
  if (it != ids_.end()) return it->second;
  KGOA_CHECK_MSG(terms_.size() < kInvalidTerm, "dictionary full");
  terms_.emplace_back(term);
  const TermId id = static_cast<TermId>(terms_.size() - 1);
  ids_.emplace(std::string_view(terms_.back()), id);
  return id;
}

TermId Dictionary::Lookup(std::string_view term) const {
  auto it = ids_.find(term);
  return it == ids_.end() ? kInvalidTerm : it->second;
}

std::string_view Dictionary::Spell(TermId id) const {
  KGOA_CHECK(id < terms_.size());
  return terms_[id];
}

}  // namespace kgoa
