// Immutable in-memory RDF graph: a deduplicated, dictionary-encoded set of
// triples plus the well-known vocabulary ids the exploration model needs.
//
// Build with GraphBuilder; once built the triple set never changes, which is
// what lets the indexes in src/index/ use flat sorted arrays (the paper's
// representation, section V-A).
#ifndef KGOA_RDF_GRAPH_H_
#define KGOA_RDF_GRAPH_H_

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

#include "src/rdf/dictionary.h"
#include "src/rdf/types.h"

namespace kgoa {

class Graph {
 public:
  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  // A graph with `sorted` as its triple set, SHARING `base`'s dictionary
  // and vocabulary ids. `sorted` must be (s,p,o)-sorted and duplicate
  // free, and every TermId in it must be interned in the shared
  // dictionary. This is how compaction folds an overlay into a fresh base
  // without re-encoding: the same TermIds mean the rebuilt indexes are
  // byte-identical to a from-scratch build of the merged triple set.
  static Graph Rebase(const Graph& base, std::vector<Triple> sorted);

  // Triples sorted by (s, p, o), without duplicates.
  const std::vector<Triple>& triples() const { return triples_; }
  std::size_t NumTriples() const { return triples_.size(); }

  const Dictionary& dict() const { return *dict_; }

  // The shared dictionary handle (stable across Rebase generations).
  // MutableGraph interns new terms through this — see the concurrency
  // notes in src/core/mutable_graph.h.
  const std::shared_ptr<Dictionary>& dict_ptr() const { return dict_; }

  // Well-known term ids (always interned by GraphBuilder::Build).
  TermId rdf_type() const { return rdf_type_; }
  TermId subclass_of() const { return subclass_of_; }
  TermId owl_thing() const { return owl_thing_; }

  // Distinct predicate ids, ascending.
  std::vector<TermId> Properties() const;
  // Distinct objects of rdf:type triples (the classes in use), ascending.
  std::vector<TermId> Classes() const;

  bool Contains(const Triple& t) const;

 private:
  friend class GraphBuilder;

  // shared_ptr so Rebase generations (and every GraphVersion pinning
  // them) share one dictionary: TermIds stay stable across compactions.
  std::shared_ptr<Dictionary> dict_ = std::make_shared<Dictionary>();
  std::vector<Triple> triples_;
  TermId rdf_type_ = kInvalidTerm;
  TermId subclass_of_ = kInvalidTerm;
  TermId owl_thing_ = kInvalidTerm;
};

// Accumulates triples, then produces an immutable Graph. Duplicate triples
// are tolerated and removed at Build time.
class GraphBuilder {
 public:
  GraphBuilder();

  TermId Intern(std::string_view term) { return dict_.Intern(term); }
  const Dictionary& dict() const { return dict_; }

  void Add(TermId s, TermId p, TermId o);
  void Add(const Triple& t) { Add(t.s, t.p, t.o); }
  void AddSpelled(std::string_view s, std::string_view p, std::string_view o);

  std::size_t NumPending() const { return triples_.size(); }

  // Consumes the builder.
  Graph Build() &&;

 private:
  Dictionary dict_;
  std::vector<Triple> triples_;
};

}  // namespace kgoa

#endif  // KGOA_RDF_GRAPH_H_
