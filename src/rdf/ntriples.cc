#include "src/rdf/ntriples.h"

#include <algorithm>
#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

namespace kgoa {

namespace {

void SkipSpace(std::string_view& s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
}

// Parses one term (IRI or literal) from the front of `s` into `out`.
// Returns false on malformed input. Literals keep their quotes stripped and
// escapes resolved; a "^^<datatype>" suffix is preserved verbatim in the
// stored spelling so round-trips keep type information.
// IRIREF content per the N-Triples grammar: no whitespace, quotes or
// nested angle brackets. Rejecting these here is what lets WriteNTriples
// locate a stored literal's closing quote with rfind('"') — suffixes
// appended after the closing quote can never contain one.
bool ValidIriContent(std::string_view iri) {
  for (const char c : iri) {
    if (c == '"' || c == '<' || c == ' ' || c == '\t') return false;
  }
  return true;
}

bool ParseTerm(std::string_view& s, std::string& out, bool allow_literal) {
  SkipSpace(s);
  if (s.empty()) return false;
  out.clear();
  if (s.front() == '<') {
    const auto end = s.find('>');
    if (end == std::string_view::npos) return false;
    out.assign(s.substr(1, end - 1));
    if (out.empty() || !ValidIriContent(out)) return false;
    s.remove_prefix(end + 1);
    return true;
  }
  if (s.front() == '"') {
    if (!allow_literal) return false;
    s.remove_prefix(1);
    out.push_back('"');
    while (!s.empty() && s.front() != '"') {
      char c = s.front();
      if (c == '\\') {
        s.remove_prefix(1);
        if (s.empty()) return false;
        switch (s.front()) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          default: return false;
        }
      }
      out.push_back(c);
      s.remove_prefix(1);
    }
    if (s.empty()) return false;  // unterminated literal
    s.remove_prefix(1);           // closing quote
    out.push_back('"');
    // Optional datatype ("^^<iri>") or language tag ("@tag"), validated
    // and kept verbatim in the spelling.
    if (!s.empty() && s.front() == '^') {
      if (s.size() < 4 || s[1] != '^' || s[2] != '<') return false;
      const auto end = s.find('>', 3);
      if (end == std::string_view::npos) return false;
      const std::string_view iri = s.substr(3, end - 3);
      if (iri.empty() || !ValidIriContent(iri)) return false;
      out.append(s.substr(0, end + 1));
      s.remove_prefix(end + 1);
    } else if (!s.empty() && s.front() == '@') {
      std::size_t len = 1;
      while (len < s.size() &&
             (std::isalnum(static_cast<unsigned char>(s[len])) != 0 ||
              s[len] == '-')) {
        ++len;
      }
      if (len == 1) return false;  // bare '@'
      out.append(s.substr(0, len));
      s.remove_prefix(len);
    }
    return true;
  }
  return false;
}

bool ParseLine(std::string_view line, GraphBuilder& builder,
               std::string& err) {
  std::string s, p, o;
  if (!ParseTerm(line, s, /*allow_literal=*/false)) {
    err = "malformed subject";
    return false;
  }
  if (!ParseTerm(line, p, /*allow_literal=*/false)) {
    err = "malformed predicate";
    return false;
  }
  if (!ParseTerm(line, o, /*allow_literal=*/true)) {
    err = "malformed object";
    return false;
  }
  SkipSpace(line);
  if (line.empty() || line.front() != '.') {
    err = "missing terminating '.'";
    return false;
  }
  builder.AddSpelled(s, p, o);
  return true;
}

bool IsBlankOrComment(std::string_view line) {
  SkipSpace(line);
  return line.empty() || line.front() == '#';
}

}  // namespace

NtParseResult ParseNTriples(std::istream& in, GraphBuilder& builder) {
  NtParseResult result;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (IsBlankOrComment(line)) continue;
    std::string err;
    if (!ParseLine(line, builder, err)) {
      result.ok = false;
      result.error_line = lineno;
      result.error = err;
      return result;
    }
    ++result.lines_parsed;
  }
  return result;
}

NtParseResult ParseNTriplesString(std::string_view text,
                                  GraphBuilder& builder) {
  std::istringstream in{std::string(text)};
  return ParseNTriples(in, builder);
}

void WriteNTriples(const Graph& graph, std::ostream& out) {
  auto write_term = [&](TermId id, bool object_position) {
    const std::string_view term = graph.dict().Spell(id);
    if (object_position && !term.empty() && term.front() == '"') {
      // Stored literal spelling: quoted content plus optional suffix.
      const auto close = term.rfind('"');
      out << '"';
      for (char c : term.substr(1, close - 1)) {
        switch (c) {
          case '\n': out << "\\n"; break;
          case '\t': out << "\\t"; break;
          case '\r': out << "\\r"; break;
          case '"': out << "\\\""; break;
          case '\\': out << "\\\\"; break;
          default: out << c;
        }
      }
      out << '"' << term.substr(close + 1);
    } else {
      out << '<' << term << '>';
    }
  };
  // Canonical output order: sort by spelling, not by TermId. Ids depend on
  // intern history, so id order would change across a write/reparse cycle
  // (found by fuzz/ntriples_fuzz.cc); spelling order makes serialization a
  // fixed point regardless of how the graph was assembled.
  std::vector<Triple> sorted = graph.triples();
  const Dictionary& dict = graph.dict();
  std::sort(sorted.begin(), sorted.end(),
            [&dict](const Triple& a, const Triple& b) {
              for (int c = 0; c < 3; ++c) {
                if (a[c] != b[c]) return dict.Spell(a[c]) < dict.Spell(b[c]);
              }
              return false;
            });
  for (const Triple& t : sorted) {
    write_term(t.s, false);
    out << ' ';
    write_term(t.p, false);
    out << ' ';
    write_term(t.o, true);
    out << " .\n";
  }
}

}  // namespace kgoa
