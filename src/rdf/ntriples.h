// Reader and writer for a pragmatic subset of the N-Triples format:
// IRIs in angle brackets, plain/typed string literals, '#' comments, and
// blank lines. This is the on-disk interchange format for the library
// (public KG dumps such as DBpedia ship as N-Triples).
#ifndef KGOA_RDF_NTRIPLES_H_
#define KGOA_RDF_NTRIPLES_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "src/rdf/graph.h"

namespace kgoa {

struct NtParseResult {
  bool ok = true;
  std::size_t lines_parsed = 0;   // triples successfully added
  std::size_t error_line = 0;     // 1-based; 0 when ok
  std::string error;
};

// Parses N-Triples from `in`, adding every triple to `builder`.
// Stops at the first malformed line and reports it.
NtParseResult ParseNTriples(std::istream& in, GraphBuilder& builder);

// Convenience: parse from a string.
NtParseResult ParseNTriplesString(std::string_view text,
                                  GraphBuilder& builder);

// Serializes `graph` as N-Triples. Terms that look like IRIs (no interior
// whitespace/quotes) are written in angle brackets; anything else as an
// escaped literal. Round-trips output of this library exactly.
void WriteNTriples(const Graph& graph, std::ostream& out);

}  // namespace kgoa

#endif  // KGOA_RDF_NTRIPLES_H_
