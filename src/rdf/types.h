// Fundamental RDF value types: dictionary-encoded term identifiers and
// triples. An RDF graph is a set of (subject, predicate, object) triples;
// all engines in this library operate on the integer-encoded form.
#ifndef KGOA_RDF_TYPES_H_
#define KGOA_RDF_TYPES_H_

#include <cstdint>
#include <functional>

namespace kgoa {

// Dictionary-encoded term identifier. 32 bits comfortably covers the
// synthetic graphs used in the reproduction (tens of millions of terms);
// widen to uint64_t here to scale past 4B terms.
using TermId = uint32_t;

inline constexpr TermId kInvalidTerm = static_cast<TermId>(-1);

// A dictionary-encoded RDF triple.
struct Triple {
  TermId s = kInvalidTerm;
  TermId p = kInvalidTerm;
  TermId o = kInvalidTerm;

  friend bool operator==(const Triple&, const Triple&) = default;

  // Component access by position: 0 = subject, 1 = predicate, 2 = object.
  TermId operator[](int component) const {
    return component == 0 ? s : (component == 1 ? p : o);
  }
};

// Lexicographic (s, p, o) order; index orders use their own comparators.
inline bool SpoLess(const Triple& a, const Triple& b) {
  if (a.s != b.s) return a.s < b.s;
  if (a.p != b.p) return a.p < b.p;
  return a.o < b.o;
}

struct TripleHash {
  std::size_t operator()(const Triple& t) const {
    uint64_t h = t.s;
    h = h * 0x9e3779b97f4a7c15ULL + t.p;
    h = h * 0x9e3779b97f4a7c15ULL + t.o;
    h ^= h >> 29;
    return static_cast<std::size_t>(h * 0xbf58476d1ce4e5b9ULL);
  }
};

// Packs two 32-bit term ids into one 64-bit key (hash-index keys, caches).
inline uint64_t PackPair(TermId a, TermId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace kgoa

#endif  // KGOA_RDF_TYPES_H_
