// Binary graph snapshots: a compact on-disk format for dictionary-encoded
// graphs, so that large (synthetic or parsed) graphs load in milliseconds
// instead of re-parsing N-Triples or re-generating. Format (little
// endian): magic, version, dictionary (length-prefixed UTF-8 terms in id
// order), then the triple array.
#ifndef KGOA_RDF_BINARY_IO_H_
#define KGOA_RDF_BINARY_IO_H_

#include <optional>
#include <string>

#include "src/rdf/graph.h"

namespace kgoa {

// Writes `graph` to `path`. Returns false on I/O failure.
bool SaveGraphBinary(const Graph& graph, const std::string& path);

// Loads a snapshot; returns std::nullopt and fills *error (if non-null) on
// I/O failure, bad magic, version mismatch, or truncation.
std::optional<Graph> LoadGraphBinary(const std::string& path,
                                     std::string* error = nullptr);

}  // namespace kgoa

#endif  // KGOA_RDF_BINARY_IO_H_
