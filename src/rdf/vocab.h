// Well-known vocabulary IRIs used by the exploration model (section III of
// the paper): rdf:type for class membership, rdfs:subClassOf for the class
// hierarchy, and owl:Thing as the exploration root.
#ifndef KGOA_RDF_VOCAB_H_
#define KGOA_RDF_VOCAB_H_

namespace kgoa::vocab {

inline constexpr char kRdfType[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr char kRdfsSubClassOf[] =
    "http://www.w3.org/2000/01/rdf-schema#subClassOf";
inline constexpr char kOwlThing[] = "http://www.w3.org/2002/07/owl#Thing";

}  // namespace kgoa::vocab

#endif  // KGOA_RDF_VOCAB_H_
