// Class hierarchy utilities.
//
// The paper's remark in section IV-A: patterns over rdf:type are joined with
// the transitive closure of rdfs:subClassOf. Following the paper's setup for
// CTJ / Wander Join / Audit Join, the closure is computed offline and
// materialized into the graph: every (x, rdf:type, c) triple is expanded to
// (x, rdf:type, c') for all (possibly indirect) superclasses c' of c.
#ifndef KGOA_RDF_SCHEMA_H_
#define KGOA_RDF_SCHEMA_H_

#include <unordered_map>
#include <vector>

#include "src/rdf/graph.h"
#include "src/rdf/types.h"

namespace kgoa {

// View over the rdfs:subClassOf edges of a graph. Built once per graph.
class ClassHierarchy {
 public:
  explicit ClassHierarchy(const Graph& graph);

  // Direct superclasses / subclasses (as asserted, no closure).
  const std::vector<TermId>& Parents(TermId cls) const;
  const std::vector<TermId>& Children(TermId cls) const;

  // All (possibly indirect) strict superclasses of `cls`, deduplicated.
  // Cycles in the subclass graph are tolerated (each class visited once).
  std::vector<TermId> Ancestors(TermId cls) const;

  // Classes with no asserted parent.
  std::vector<TermId> Roots() const;

  // Every class mentioned in a subClassOf edge or as an rdf:type object.
  const std::vector<TermId>& AllClasses() const { return all_classes_; }

 private:
  std::unordered_map<TermId, std::vector<TermId>> parents_;
  std::unordered_map<TermId, std::vector<TermId>> children_;
  std::vector<TermId> all_classes_;
  std::vector<TermId> empty_;
};

// Returns a new graph equal to `graph` plus the materialized subclass
// closure on instance typing: for each (x, rdf:type, c) and ancestor c' of
// c, the triple (x, rdf:type, c'). subClassOf edges themselves are copied
// as-is. Term ids are stable: the new graph's dictionary assigns every
// existing term the same id.
Graph MaterializeSubclassClosure(const Graph& graph);

// The analogous closure for rdfs:subPropertyOf — one of the paper's
// envisaged extensions ("support for further semantics beyond subclass
// closure", section VI): for each triple (s, p, o) and super-property p'
// of p, the triple (s, p', o) is added. Property hierarchy edges are
// triples (p, rdfs:subPropertyOf, p'); cycles are tolerated. Term ids are
// stable.
inline constexpr char kRdfsSubPropertyOf[] =
    "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";

Graph MaterializeSubPropertyClosure(const Graph& graph);

}  // namespace kgoa

#endif  // KGOA_RDF_SCHEMA_H_
