#include "src/rdf/binary_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace kgoa {

namespace {

constexpr char kMagic[8] = {'K', 'G', 'O', 'A', 'G', 'R', 'P', 'H'};
constexpr uint32_t kVersion = 1;

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

}  // namespace

bool SaveGraphBinary(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;

  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);

  const auto num_terms = static_cast<uint64_t>(graph.dict().size());
  WritePod(out, num_terms);
  for (TermId id = 0; id < num_terms; ++id) {
    const std::string_view term = graph.dict().Spell(id);
    WritePod(out, static_cast<uint32_t>(term.size()));
    out.write(term.data(), static_cast<std::streamsize>(term.size()));
  }

  const auto num_triples = static_cast<uint64_t>(graph.NumTriples());
  WritePod(out, num_triples);
  for (const Triple& t : graph.triples()) {
    WritePod(out, t.s);
    WritePod(out, t.p);
    WritePod(out, t.o);
  }
  return out.good();
}

std::optional<Graph> LoadGraphBinary(const std::string& path,
                                     std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }

  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    SetError(error, "not a kgoa graph snapshot");
    return std::nullopt;
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    SetError(error, "unsupported snapshot version");
    return std::nullopt;
  }

  GraphBuilder builder;
  uint64_t num_terms = 0;
  if (!ReadPod(in, &num_terms)) {
    SetError(error, "truncated dictionary header");
    return std::nullopt;
  }
  std::string term;
  for (uint64_t i = 0; i < num_terms; ++i) {
    uint32_t length = 0;
    if (!ReadPod(in, &length)) {
      SetError(error, "truncated dictionary");
      return std::nullopt;
    }
    term.resize(length);
    in.read(term.data(), length);
    if (!in.good()) {
      SetError(error, "truncated dictionary entry");
      return std::nullopt;
    }
    const TermId id = builder.Intern(term);
    if (id != static_cast<TermId>(i)) {
      SetError(error, "duplicate term in snapshot dictionary");
      return std::nullopt;
    }
  }

  uint64_t num_triples = 0;
  if (!ReadPod(in, &num_triples)) {
    SetError(error, "truncated triple header");
    return std::nullopt;
  }
  for (uint64_t i = 0; i < num_triples; ++i) {
    Triple t;
    if (!ReadPod(in, &t.s) || !ReadPod(in, &t.p) || !ReadPod(in, &t.o)) {
      SetError(error, "truncated triples");
      return std::nullopt;
    }
    if (t.s >= num_terms || t.p >= num_terms || t.o >= num_terms) {
      SetError(error, "triple references unknown term");
      return std::nullopt;
    }
    builder.Add(t);
  }
  return std::move(builder).Build();
}

}  // namespace kgoa
