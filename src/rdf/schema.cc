#include "src/rdf/schema.h"

#include <algorithm>
#include <unordered_set>

namespace kgoa {

ClassHierarchy::ClassHierarchy(const Graph& graph) {
  std::unordered_set<TermId> classes;
  for (const Triple& t : graph.triples()) {
    if (t.p == graph.subclass_of()) {
      parents_[t.s].push_back(t.o);
      children_[t.o].push_back(t.s);
      classes.insert(t.s);
      classes.insert(t.o);
    } else if (t.p == graph.rdf_type()) {
      classes.insert(t.o);
    }
  }
  all_classes_.assign(classes.begin(), classes.end());
  std::sort(all_classes_.begin(), all_classes_.end());
  for (auto& [cls, ps] : parents_) {
    std::sort(ps.begin(), ps.end());
    ps.erase(std::unique(ps.begin(), ps.end()), ps.end());
  }
  for (auto& [cls, cs] : children_) {
    std::sort(cs.begin(), cs.end());
    cs.erase(std::unique(cs.begin(), cs.end()), cs.end());
  }
}

const std::vector<TermId>& ClassHierarchy::Parents(TermId cls) const {
  auto it = parents_.find(cls);
  return it == parents_.end() ? empty_ : it->second;
}

const std::vector<TermId>& ClassHierarchy::Children(TermId cls) const {
  auto it = children_.find(cls);
  return it == children_.end() ? empty_ : it->second;
}

std::vector<TermId> ClassHierarchy::Ancestors(TermId cls) const {
  std::vector<TermId> out;
  std::unordered_set<TermId> seen{cls};
  std::vector<TermId> stack{cls};
  while (!stack.empty()) {
    const TermId cur = stack.back();
    stack.pop_back();
    for (TermId parent : Parents(cur)) {
      if (seen.insert(parent).second) {
        out.push_back(parent);
        stack.push_back(parent);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TermId> ClassHierarchy::Roots() const {
  std::vector<TermId> roots;
  for (TermId cls : all_classes_) {
    if (Parents(cls).empty()) roots.push_back(cls);
  }
  return roots;
}

Graph MaterializeSubPropertyClosure(const Graph& graph) {
  const TermId subprop = graph.dict().Lookup(kRdfsSubPropertyOf);

  // Direct super-properties.
  std::unordered_map<TermId, std::vector<TermId>> parents;
  if (subprop != kInvalidTerm) {
    for (const Triple& t : graph.triples()) {
      if (t.p == subprop) parents[t.s].push_back(t.o);
    }
  }

  // Transitive ancestors, memoized, cycle-safe.
  std::unordered_map<TermId, std::vector<TermId>> ancestors;
  auto ancestors_of = [&](TermId p) -> const std::vector<TermId>& {
    auto it = ancestors.find(p);
    if (it != ancestors.end()) return it->second;
    std::vector<TermId> out;
    std::unordered_set<TermId> seen{p};
    std::vector<TermId> stack{p};
    while (!stack.empty()) {
      const TermId cur = stack.back();
      stack.pop_back();
      auto pit = parents.find(cur);
      if (pit == parents.end()) continue;
      for (TermId parent : pit->second) {
        if (seen.insert(parent).second) {
          out.push_back(parent);
          stack.push_back(parent);
        }
      }
    }
    return ancestors.emplace(p, std::move(out)).first->second;
  };

  GraphBuilder builder;
  for (TermId id = 0; id < graph.dict().size(); ++id) {
    builder.Intern(graph.dict().Spell(id));
  }
  for (const Triple& t : graph.triples()) {
    builder.Add(t);
    if (t.p == subprop || parents.find(t.p) == parents.end()) continue;
    for (TermId super : ancestors_of(t.p)) {
      builder.Add(t.s, super, t.o);
    }
  }
  return std::move(builder).Build();
}

Graph MaterializeSubclassClosure(const Graph& graph) {
  ClassHierarchy hierarchy(graph);

  GraphBuilder builder;
  // Re-intern every term in id order so ids stay stable.
  for (TermId id = 0; id < graph.dict().size(); ++id) {
    builder.Intern(graph.dict().Spell(id));
  }

  // Memoize ancestor sets per class: type triples vastly outnumber classes.
  std::unordered_map<TermId, std::vector<TermId>> ancestors;
  for (const Triple& t : graph.triples()) {
    builder.Add(t);
    if (t.p != graph.rdf_type()) continue;
    auto it = ancestors.find(t.o);
    if (it == ancestors.end()) {
      it = ancestors.emplace(t.o, hierarchy.Ancestors(t.o)).first;
    }
    for (TermId super : it->second) {
      builder.Add(t.s, t.p, super);
    }
  }
  return std::move(builder).Build();
}

}  // namespace kgoa
