// Bidirectional mapping between RDF term strings (IRIs and literals) and
// dense integer TermIds. All query processing happens on TermIds; the
// dictionary is consulted only at load time and when printing results.
#ifndef KGOA_RDF_DICTIONARY_H_
#define KGOA_RDF_DICTIONARY_H_

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/rdf/types.h"

namespace kgoa {

class Dictionary {
 public:
  Dictionary() = default;
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  // Returns the id for `term`, interning it if new. Ids are dense and
  // assigned in first-seen order.
  TermId Intern(std::string_view term);

  // Returns the id for `term` or kInvalidTerm if it was never interned.
  TermId Lookup(std::string_view term) const;

  // Returns the string form of `id`. `id` must be valid.
  std::string_view Spell(TermId id) const;

  std::size_t size() const { return terms_.size(); }

 private:
  // std::deque gives stable addresses so the map's string_view keys can
  // point into the stored strings without re-allocation hazards.
  std::deque<std::string> terms_;
  std::unordered_map<std::string_view, TermId> ids_;
};

}  // namespace kgoa

#endif  // KGOA_RDF_DICTIONARY_H_
