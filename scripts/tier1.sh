#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then sanitizer passes:
#  - parallel_test under ThreadSanitizer (the snapshot-publishing path is
#    the only multi-threaded code in the repo, so that one binary is the
#    race check; the parallel index build rides along),
#  - index_test + join_test under AddressSanitizer and UBSan (the index
#    layer does raw flat-table slot arithmetic and galloping seeks; these
#    two binaries exercise every probe and seek path).
#
# Usage: scripts/tier1.sh   (from the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== tier-1: build + ctest ==="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo
echo "=== tier-1: parallel_test under ThreadSanitizer ==="
cmake -B build-tsan -S . -DKGOA_SANITIZE=thread
cmake --build build-tsan -j --target parallel_test
./build-tsan/tests/parallel_test

for san in address undefined; do
  echo
  echo "=== tier-1: index_test + join_test under ${san} sanitizer ==="
  cmake -B "build-${san}" -S . -DKGOA_SANITIZE="${san}"
  cmake --build "build-${san}" -j --target index_test --target join_test
  "./build-${san}/tests/index_test"
  "./build-${san}/tests/join_test"
done

echo
echo "tier-1 OK"
