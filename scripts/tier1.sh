#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the parallel OLA test
# under ThreadSanitizer (the snapshot-publishing path is the only
# multi-threaded code in the repo, so that one binary is the race check).
#
# Usage: scripts/tier1.sh   (from the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== tier-1: build + ctest ==="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo
echo "=== tier-1: parallel_test under ThreadSanitizer ==="
cmake -B build-tsan -S . -DKGOA_SANITIZE=thread
cmake --build build-tsan -j --target parallel_test
./build-tsan/tests/parallel_test

echo
echo "tier-1 OK"
