#!/usr/bin/env bash
# Tier-1 verification. Stages, all fatal:
#
#  1. build + full ctest suite (warnings are errors: KGOA_WERROR=ON)
#  2. scripts/lint.sh — -Werror rebuild, repo lint rules (incl. the
#     raw-mutex / naked-memory-order / cv-wait-predicate concurrency
#     rules and stale-suppression detection), clang-tidy, and the clang
#     -Wthread-safety stage with its negative-compile harness (the two
#     clang stages skip with a notice when clang is absent)
#  3. parallel_test + serve_test + reach_concurrent_test + shard_test +
#     sync_test + mutable_test under ThreadSanitizer (the serving-core
#     scheduler, the snapshot-publishing path, the shared sharded reach
#     cache, the scatter-gather coordinator, the annotated sync wrappers
#     and the RCU epoch-publish / journal-replay compaction races are the
#     repo's multi-threaded code; the parallel index build rides along)
#  4. the ENTIRE ctest suite under AddressSanitizer and UBSan
#  5. the entire suite again with -DKGOA_CONTRACTS=ON, so every
#     KGOA_DCHECK contract (sortedness, cursor monotonicity, memo
#     poisoning, probability ranges, probe-chain bounds) runs in an
#     otherwise-release build
#  6. all four fuzz harnesses (-DKGOA_FUZZ=ON) replay their corpus and
#     fuzz for KGOA_FUZZ_SECONDS (default 60) each (overlay_fuzz is the
#     snapshot-epoch differential: overlay view vs from-scratch rebuild)
#  7. the entire ctest suite once more with KGOA_SIMD=off, so the
#     scalar kernel fallback (the only dispatch level on non-x86 hosts)
#     gets the same coverage as the vectorized default
#  8. bench smoke: scripts/bench_json.sh --quick must emit all six
#     BENCH JSONs with their stable key sets (written to a temp dir so
#     the checked-in full-mode BENCH_reach.json / BENCH_serve.json /
#     BENCH_shard.json / BENCH_index.json / BENCH_kernels.json /
#     BENCH_update.json are not clobbered with quick-mode numbers)
#
# Usage: scripts/tier1.sh   (from the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
FUZZ_SECONDS="${KGOA_FUZZ_SECONDS:-60}"

echo "=== tier-1: build + ctest ==="
cmake -B build -S . -DKGOA_WERROR=ON
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo
echo "=== tier-1: static analysis (scripts/lint.sh) ==="
scripts/lint.sh build-lint

echo
echo "=== tier-1: concurrency tests under ThreadSanitizer ==="
cmake -B build-tsan -S . -DKGOA_SANITIZE=thread -DKGOA_WERROR=ON
cmake --build build-tsan -j "${JOBS}" --target parallel_test \
      --target serve_test --target reach_concurrent_test \
      --target shard_test --target sync_test --target mutable_test
./build-tsan/tests/parallel_test
./build-tsan/tests/serve_test
./build-tsan/tests/reach_concurrent_test
./build-tsan/tests/shard_test
./build-tsan/tests/sync_test
./build-tsan/tests/mutable_test

for san in address undefined; do
  echo
  echo "=== tier-1: full suite under ${san} sanitizer ==="
  cmake -B "build-${san}" -S . -DKGOA_SANITIZE="${san}" -DKGOA_WERROR=ON
  cmake --build "build-${san}" -j "${JOBS}"
  ctest --test-dir "build-${san}" --output-on-failure -j "${JOBS}"
done

echo
echo "=== tier-1: full suite with KGOA_CONTRACTS=ON ==="
cmake -B build-contracts -S . -DKGOA_CONTRACTS=ON -DKGOA_WERROR=ON \
      -DKGOA_FUZZ=ON
cmake --build build-contracts -j "${JOBS}"
ctest --test-dir build-contracts --output-on-failure -j "${JOBS}"

echo
echo "=== tier-1: fuzz harnesses (${FUZZ_SECONDS}s each) ==="
./build-contracts/fuzz/ntriples_fuzz fuzz/corpus/ntriples \
    "-max_total_time=${FUZZ_SECONDS}"
./build-contracts/fuzz/join_fuzz fuzz/corpus/join \
    "-max_total_time=${FUZZ_SECONDS}"
./build-contracts/fuzz/block_codec_fuzz fuzz/corpus/block_codec \
    "-max_total_time=${FUZZ_SECONDS}"
./build-contracts/fuzz/overlay_fuzz fuzz/corpus/overlay \
    "-max_total_time=${FUZZ_SECONDS}"

echo
echo "=== tier-1: full suite with KGOA_SIMD=off (scalar fallback) ==="
KGOA_SIMD=off ctest --test-dir build --output-on-failure -j "${JOBS}"

echo
echo "=== tier-1: bench smoke (scripts/bench_json.sh) ==="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT
scripts/bench_json.sh --quick "${SMOKE_DIR}/BENCH_reach.json" \
    "${SMOKE_DIR}/BENCH_serve.json" "${SMOKE_DIR}/BENCH_shard.json" \
    "${SMOKE_DIR}/BENCH_index.json" "${SMOKE_DIR}/BENCH_kernels.json" \
    "${SMOKE_DIR}/BENCH_update.json"

echo
echo "tier-1 OK"
