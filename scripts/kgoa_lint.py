#!/usr/bin/env python3
"""Repo-specific lint rules for the KGOA codebase.

Rules (see DESIGN.md, "Correctness tooling" and §11):

  bare-assert            No assert()/cassert outside src/util/contract.h —
                         invariants go through the leveled KGOA_CHECK /
                         KGOA_DCHECK contract macros so they print operands
                         and a backtrace, and stay active per build level.
  legacy-check-include   src/util/check.h is gone; nothing may include it.
  unordered-in-hot-path  No std::unordered_map / std::unordered_set inside
                         the hot-path dirs (src/index, src/join, src/core,
                         src/ola): node-based hashing is what FlatTable,
                         FlatAccumulator and ShardedFlatTable exist to
                         replace. Deliberate uses (reference baselines,
                         result containers) carry a
                         `kgoa-lint: allow(unordered-in-hot-path)` note.
  raw-rand               No rand()/srand()/std::mt19937/std::random_device
                         anywhere in src/: all randomness flows through the
                         seedable kgoa::Rng so runs stay reproducible.
  discarded-index-seek   A TrieIndex::SeekGE/Narrow/BlockEnd/Level0Range
                         result must not be discarded: these return the
                         new position/range, and dropping it means the
                         caller kept an unbounded cursor.
  seek-without-bounds-check
                         A TrieIterator::SeekGE (single-argument seek)
                         must have an AtEnd()/Key() bounds check within
                         +/-15 lines: the seek can exhaust the level, and
                         reading Key() at the end is undefined.
  raw-thread             No std::thread construction outside
                         src/ola/parallel.cc: every serve goes through the
                         persistent ServingCore worker pool, never a
                         thread-per-request. Deliberate uses (the parallel
                         index build, test/bench harnesses driving the
                         pool from multiple clients) carry a
                         `kgoa-lint: allow(raw-thread)` note.
  raw-level-array        No TrieIndex::RawTriplesForDerive() calls outside
                         src/index: the raw triple array only exists on the
                         raw storage tier (the block tier frees it), so any
                         caller bypassing the tier-agnostic accessors
                         (TripleAt/KeyAt/Narrow/SeekGE/BlockEnd) breaks as
                         soon as an IndexSet is built with
                         StorageTier::kBlock. Only IndexSet's chained radix
                         derivation may touch it.
  raw-mutex              No std::mutex / std::lock_guard / std::unique_lock
                         / std::condition_variable (or their timed/shared/
                         scoped siblings) outside src/util/sync.h: the
                         annotated kgoa::Mutex / MutexLock / CondVar
                         wrappers are the only legal lock types, because
                         the std types carry no thread-safety-analysis
                         capability attributes and silently disable the
                         clang -Wthread-safety stage for whatever they
                         guard (src/util/sync.h).
  naked-memory-order     Atomic load/store/exchange/fetch_*/
                         compare_exchange in src/** must name an explicit
                         std::memory_order. The serving core's lock-free
                         paths (cancellation tokens, published table
                         arrays, slot keys) are correctness-ordered; a
                         defaulted seq_cst is either an unstated crutch or
                         an accident, and both deserve a spelled-out order.
  cv-wait-predicate      CondVar::Wait / WaitFor must use the predicate
                         overload (Wait(mu, pred) / WaitFor(mu, d, pred)):
                         a bare wait invites the classic spurious-wakeup
                         bug (also flagged by clang-tidy's
                         bugprone-spuriously-wake-up-functions).
  raw-graph-retention    No raw `Graph*` / `IndexSet*` (or `const Graph&` /
                         `const IndexSet&`) members outside src/index and
                         src/rdf: since the snapshot-epoch refactor
                         (DESIGN.md §13) the current version's Graph and
                         IndexSet are replaced by every compaction, so a
                         raw member held across an epoch boundary dangles.
                         Long-lived holders keep a GraphSnapshot (which
                         pins the version); query-scoped engines that
                         provably live inside one pinned serving call
                         carry a `kgoa-lint: allow(raw-graph-retention)`
                         note naming the snapshot that outlives them.
  raw-intrinsic          No <immintrin.h>-family includes or _mm*/__m128/
                         __m256 intrinsics outside src/util/simd.h and
                         src/index/kernels.{h,cc}: the kernel layer is the
                         single dispatch point (per-function target
                         attributes, scalar fallback, differential tests);
                         a stray intrinsic elsewhere either breaks the
                         no.-march build or silently skips the KGOA_SIMD
                         scalar-fallback stage.

Suppression: append `// kgoa-lint: allow(<rule>[, <rule>...])` on the
offending line or the line directly above, with a reason. Exits 1 when any
finding is reported, 0 on a clean tree.

Modes:
  (default)        lint the tree.
  --stale-allows   lint the tree, then report every `kgoa-lint: allow`
                   whose rule no longer fires on the line it covers (dead
                   suppressions rot into false documentation). Exits 1 if
                   any are stale.
  --self-test      run the built-in rule unit tests (synthetic sources fed
                   through the same lint path the tree uses). Exits 1 on
                   any self-test failure.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

ALLOW_RE = re.compile(r"kgoa-lint:\s*allow\(([^)]*)\)")

# TrieIndex seeks take (range, level, value[, from]): >= 2 top-level commas.
INDEX_SEEK_STMT_RE = re.compile(
    r"^\s*[A-Za-z_][\w.\->()\[\]]*[.\->]+(SeekGE|Narrow|BlockEnd|Level0Range)\s*\("
)
ITER_SEEK_RE = re.compile(r"[.\->]SeekGE\s*\(")
BOUNDS_RE = re.compile(r"AtEnd\s*\(|Key\s*\(")

RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable(?:_any)?)\b"
)

ATOMIC_OP_RE = re.compile(
    r"[.\->](load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong|"
    r"test_and_set|clear|wait)\s*\("
)
# Methods above that only LOOK atomic on non-atomic types; `clear`/`wait`
# are so common they would drown the rule, so they are checked only when
# the receiver is visibly atomic-ish. Keeping the rule precise beats
# keeping it total: the TSA stage and TSan cover what slips through.
ATOMIC_ONLY_OPS = {
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong",
}

CV_WAIT_RE = re.compile(r"[.\->](Wait|WaitFor)\s*\(")

# Raw Graph/IndexSet retention: a member declaration (trailing-underscore
# name, any initializer) or a bare field (plain name, no initializer or
# `= nullptr`) whose type is a raw pointer/reference to Graph or IndexSet.
# Locals with initializers deliberately do not match: a reference scoped
# inside one call cannot cross an epoch boundary.
RAW_GRAPH_RETAIN_RE = re.compile(
    r"^\s*(?:const\s+)?(?:kgoa::)?(Graph|IndexSet)\s*[*&]\s*"
    r"(?:\w+_\s*(?:=[^;]*)?|[A-Za-z]\w*\s*(?:=\s*nullptr\s*)?);"
)

# x86 SIMD surface: the intrinsic headers and the _mm*/__m* value types.
INTRINSIC_INCLUDE_RE = re.compile(
    r'#\s*include\s*[<"](immintrin|x86intrin|emmintrin|smmintrin|tmmintrin|'
    r"nmmintrin|wmmintrin|avxintrin|avx2intrin)\.h")
INTRINSIC_TOKEN_RE = re.compile(r"\b(_mm(?:256|512)?_\w+|__m(?:128|256|512)[id]?)\b")

# The only translation units allowed to touch raw intrinsics: the dispatch
# header and the kernel layer itself.
INTRINSIC_ALLOWED = {
    "src/util/simd.h",
    "src/util/simd.cc",
    "src/index/kernels.h",
    "src/index/kernels.cc",
}

# How far an argument list may spill across lines before the scanners
# give up (all real call sites in the tree fit comfortably).
MAX_ARG_SPAN_LINES = 10


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments and string literals, keeping line
    structure so reported line numbers stay valid."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def top_level_commas(line: str, start: int) -> int:
    """Counts commas at paren depth 1 from the '(' at/after `start`;
    best-effort within one line."""
    depth = 0
    commas = 0
    for ch in line[start:]:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
            if depth <= 0:
                break
        elif ch == "," and depth == 1:
            commas += 1
    return commas


def span_call_args(code_lines: list[str], lineno: int, col: int):
    """Returns (args_text, top_level_commas) for the call whose '(' is at
    `code_lines[lineno - 1][col]`, scanning across up to MAX_ARG_SPAN_LINES
    lines. Returns (None, 0) when the call does not close in the window
    (macro soup, pathological formatting) — callers should not report on a
    span they could not parse."""
    depth = 0
    commas = 0
    parts: list[str] = []
    for offset in range(MAX_ARG_SPAN_LINES):
        idx = lineno - 1 + offset
        if idx >= len(code_lines):
            break
        line = code_lines[idx]
        start = col if offset == 0 else 0
        for j in range(start, len(line)):
            ch = line[j]
            if ch in "([{":
                depth += 1
                if depth == 1:
                    continue  # the opening paren itself
            elif ch in ")]}":
                depth -= 1
                if depth <= 0:
                    return "".join(parts), commas
            elif ch == "," and depth == 1:
                commas += 1
            if depth >= 1:
                parts.append(ch)
        parts.append("\n")
    return None, 0


class Linter:
    def __init__(self) -> None:
        self.findings: list[str] = []
        # Every allow comment seen: (rel_path, lineno, rule).
        self.allows_seen: set[tuple[str, int, str]] = set()
        # Allow comments that actually suppressed a finding.
        self.allows_used: set[tuple[str, int, str]] = set()

    def report(self, rel: str, lineno: int, rule: str, msg: str) -> None:
        self.findings.append(f"{rel}:{lineno}: [{rule}] {msg}")

    def allowed(self, rel: str, rule: str, raw_lines: list[str],
                lineno: int) -> bool:
        for ln in (lineno, lineno - 1):
            if 1 <= ln <= len(raw_lines):
                m = ALLOW_RE.search(raw_lines[ln - 1])
                if m and rule in [r.strip() for r in m.group(1).split(",")]:
                    self.allows_used.add((rel, ln, rule))
                    return True
        return False

    def lint_file(self, path: Path) -> None:
        raw = path.read_text(encoding="utf-8", errors="replace")
        self.lint_text(path.relative_to(REPO).as_posix(), raw)

    def lint_text(self, rel: str, raw: str) -> None:
        raw_lines = raw.splitlines()
        code = strip_comments(raw)
        code_lines = code.splitlines()
        in_src = rel.startswith("src/")
        in_hot = rel.startswith(
            ("src/index/", "src/join/", "src/core/", "src/ola/"))
        is_contract = rel == "src/util/contract.h"
        is_serving_core = rel == "src/ola/parallel.cc"
        is_sync = rel == "src/util/sync.h"
        is_index_impl = rel in (
            "src/index/trie_index.h",
            "src/index/trie_index.cc",
            "src/index/trie_iterator.cc",
        )

        for i, ln in enumerate(raw_lines, start=1):
            for m in ALLOW_RE.finditer(ln):
                for rule in m.group(1).split(","):
                    rule = rule.strip()
                    if rule:
                        self.allows_seen.add((rel, i, rule))

        def check(rule: str, lineno: int, msg: str) -> None:
            if not self.allowed(rel, rule, raw_lines, lineno):
                self.report(rel, lineno, rule, msg)

        for i, line in enumerate(code_lines, start=1):
            # legacy-check-include: everywhere, including comments is fine
            # to skip — only a real include can resurrect the header.
            if re.search(r'#\s*include\s*[<"].*util/check\.h', line):
                check("legacy-check-include", i,
                      "src/util/check.h was replaced by src/util/contract.h")

            if in_src and not is_contract:
                if re.search(r"(?<![\w.])assert\s*\(", line) and \
                        "static_assert" not in line:
                    check("bare-assert", i,
                          "use KGOA_CHECK/KGOA_DCHECK from "
                          "src/util/contract.h instead of assert()")
                if re.search(r'#\s*include\s*<(cassert|assert\.h)>', line):
                    check("bare-assert", i,
                          "do not include <cassert>; use src/util/contract.h")
                if re.search(r"(?<![\w.])s?rand\s*\(|std::mt19937|"
                             r"std::random_device|std::default_random_engine",
                             line):
                    check("raw-rand", i,
                          "use the seedable kgoa::Rng (src/util/rng.h); "
                          "unseeded/global RNGs break reproducibility")

            # raw-thread: applies to every root (src, tests, bench,
            # examples, fuzz) — the serving core owns the only pool.
            # `std::thread` followed by (, {, or an identifier is a
            # construction; `std::thread::` (e.g. hardware_concurrency)
            # and std::this_thread are fine.
            if not is_serving_core:
                if re.search(r"\bstd::thread\s*(?![:])", line):
                    check("raw-thread", i,
                          "std::thread construction is reserved for the "
                          "ServingCore pool (src/ola/parallel.cc); submit "
                          "jobs to the pool or annotate the deliberate "
                          "exception")

            # raw-mutex: applies to every root. Only src/util/sync.h may
            # touch the unannotated std lock types — it wraps them once,
            # with the TSA capability attributes attached.
            if not is_sync:
                if RAW_MUTEX_RE.search(line):
                    check("raw-mutex", i,
                          "std lock types carry no thread-safety "
                          "annotations; use kgoa::Mutex / kgoa::MutexLock "
                          "/ kgoa::CondVar (src/util/sync.h) or annotate "
                          "the deliberate exception")

            # cv-wait-predicate: every root — a CondVar wait must pass a
            # predicate (Wait(mu, pred) has >= 1 top-level comma,
            # WaitFor(mu, timeout, pred) >= 2). The span scanner follows
            # multi-line argument lists.
            if not is_sync:
                for m in CV_WAIT_RE.finditer(line):
                    name = m.group(1)
                    args, commas = span_call_args(code_lines, i, m.end() - 1)
                    if args is None:
                        continue
                    need = 1 if name == "Wait" else 2
                    if commas < need:
                        check("cv-wait-predicate", i,
                              f"CondVar::{name} must use the predicate "
                              "overload; a bare wait returns on spurious "
                              "wakeups")

            # raw-intrinsic: every root except the kernel layer itself —
            # intrinsics behind the runtime dispatch only, so the
            # no--march build and the KGOA_SIMD=off stage stay honest.
            if rel not in INTRINSIC_ALLOWED:
                if INTRINSIC_INCLUDE_RE.search(line) or \
                        INTRINSIC_TOKEN_RE.search(line):
                    check("raw-intrinsic", i,
                          "raw SIMD intrinsics are fenced into src/util/"
                          "simd.h and src/index/kernels.{h,cc}; route new "
                          "vector code through the kernel layer's runtime "
                          "dispatch (scalar fallback + differential tests)")

            # raw-level-array: everywhere outside src/index — the raw
            # triple array is a tier-private detail (absent on the block
            # tier); readers must stay behind the iterator contract.
            if not rel.startswith("src/index/"):
                if re.search(r"\bRawTriplesForDerive\s*\(", line):
                    check("raw-level-array", i,
                          "RawTriplesForDerive() bypasses the storage-tier "
                          "abstraction and is empty on the block tier; use "
                          "the tier-agnostic TripleAt/KeyAt/Narrow/SeekGE/"
                          "BlockEnd accessors")

            # raw-graph-retention: src only, outside the index/rdf layers
            # that define and version these types. A raw member dangles at
            # the first compaction; hold a GraphSnapshot instead.
            if in_src and not rel.startswith(("src/index/", "src/rdf/")):
                m = RAW_GRAPH_RETAIN_RE.match(line)
                if m:
                    check("raw-graph-retention", i,
                          f"raw {m.group(1)} pointer/reference member "
                          "dangles when compaction publishes a new epoch; "
                          "hold a GraphSnapshot (src/index/snapshot.h), or "
                          "annotate a query-scoped engine that a pinned "
                          "snapshot provably outlives")

            if in_hot:
                if re.search(r"\bunordered_(map|set)\b", line):
                    check("unordered-in-hot-path", i,
                          "node-based hash containers are banned in the "
                          "hot-path dirs (src/index, src/join, src/core, "
                          "src/ola); use FlatTable/FlatAccumulator/"
                          "ShardedFlatTable or annotate the deliberate "
                          "exception")

            # naked-memory-order: src only. The argument span may continue
            # on later lines; the scanner reads the balanced parens.
            if in_src:
                for m in ATOMIC_OP_RE.finditer(line):
                    op = m.group(1)
                    if op not in ATOMIC_ONLY_OPS:
                        continue
                    args, _ = span_call_args(code_lines, i, m.end() - 1)
                    if args is None:
                        continue
                    if "memory_order" not in args:
                        check("naked-memory-order", i,
                              f"atomic {op}() without an explicit "
                              "std::memory_order; the lock-free paths are "
                              "correctness-ordered — spell the order out "
                              "(seq_cst included, if that is really what "
                              "the site needs)")

            if in_src and not is_index_impl:
                m = INDEX_SEEK_STMT_RE.match(line)
                if m and top_level_commas(line, m.end() - 1) >= 2:
                    check("discarded-index-seek", i,
                          f"result of TrieIndex::{m.group(1)} is discarded; "
                          "the returned position/range is the seek's only "
                          "output")
                sm = ITER_SEEK_RE.search(line)
                if sm and top_level_commas(line, sm.end() - 1) == 0:
                    lo = max(0, i - 16)
                    hi = min(len(code_lines), i + 15)
                    window = "\n".join(code_lines[lo:hi])
                    if not BOUNDS_RE.search(window):
                        check("seek-without-bounds-check", i,
                              "TrieIterator::SeekGE can exhaust the level; "
                              "check AtEnd()/Key() near the seek")

    def lint_tree(self) -> None:
        roots = ["src", "fuzz", "tests", "bench", "examples"]
        for root in roots:
            base = REPO / root
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix in (".h", ".cc"):
                    self.lint_file(path)

    def stale_allows(self) -> list[str]:
        stale = sorted(self.allows_seen - self.allows_used)
        return [
            f"{rel}:{lineno}: stale suppression: allow({rule}) — the rule "
            "no longer fires here; delete the note"
            for rel, lineno, rule in stale
        ]

    def run(self, report_stale: bool = False) -> int:
        self.lint_tree()
        for finding in self.findings:
            print(finding)
        extra = self.stale_allows() if report_stale else []
        for finding in extra:
            print(finding)
        n = len(self.findings) + len(extra)
        print(f"kgoa_lint: {n} finding{'s' if n != 1 else ''}")
        return 1 if n else 0


# ---------------------------------------------------------------------------
# Self-test: synthetic sources through the same lint path the tree uses.
# ---------------------------------------------------------------------------

def self_test() -> int:
    # (name, pseudo-path, source, expected rules firing in that source)
    cases = [
        ("raw mutex in src", "src/foo/bar.cc",
         "std::mutex m;\n", {"raw-mutex"}),
        ("raw lock guard in tests", "tests/foo_test.cc",
         "std::lock_guard<std::mutex> lock(m);\n", {"raw-mutex"}),
        ("raw condition_variable", "src/foo/bar.h",
         "std::condition_variable cv_;\n", {"raw-mutex"}),
        ("sync.h itself is exempt", "src/util/sync.h",
         "std::mutex mu_;\nstd::condition_variable cv_;\n", set()),
        ("allowed raw mutex", "src/foo/bar.cc",
         "// kgoa-lint: allow(raw-mutex) wrapping a C API\n"
         "std::mutex m;\n", set()),
        ("kgoa wrappers pass", "src/foo/bar.cc",
         "Mutex mu_;\nMutexLock lock(mu_);\nCondVar cv_;\n", set()),
        ("naked load", "src/foo/bar.cc",
         "int v = flag.load();\n", {"naked-memory-order"}),
        ("naked exchange", "src/foo/bar.cc",
         "if (!token.exchange(true)) {}\n", {"naked-memory-order"}),
        ("ordered load", "src/foo/bar.cc",
         "int v = flag.load(std::memory_order_acquire);\n", set()),
        ("order on continuation line", "src/foo/bar.cc",
         "token.exchange(true,\n"
         "               std::memory_order_acq_rel);\n", set()),
        ("ordered fetch_add", "src/foo/bar.cc",
         "hits.fetch_add(1, std::memory_order_relaxed);\n", set()),
        ("naked store outside src is fine", "tests/foo_test.cc",
         "flag.store(true);\n", set()),
        ("overload.load in comment", "src/foo/bar.cc",
         "// counters.load() is described here\nint x = 0;\n", set()),
        ("bare cv wait", "src/foo/bar.cc",
         "cv.Wait(mu);\n", {"cv-wait-predicate"}),
        ("predicate cv wait", "src/foo/bar.cc",
         "cv.Wait(mu, [&] { return done; });\n", set()),
        ("predicate wait, multi-line", "src/foo/bar.cc",
         "cv.Wait(mu,\n"
         "        [&] { return stopping || !queue.empty(); });\n", set()),
        ("wait-for without predicate", "src/foo/bar.cc",
         "cv.WaitFor(mu, timeout);\n", {"cv-wait-predicate"}),
        ("wait-for with predicate", "src/foo/bar.cc",
         "cv.WaitFor(mu, timeout, [&] { return done; });\n", set()),
        ("Await is not Wait", "src/foo/bar.cc",
         "result = handle.Await();\n", set()),
        ("intrinsic include outside kernels", "src/core/fast.cc",
         "#include <immintrin.h>\n", {"raw-intrinsic"}),
        ("intrinsic call outside kernels", "src/ola/hot.cc",
         "__m256i v = _mm256_loadu_si256(p);\n", {"raw-intrinsic"}),
        ("sse intrinsic in tests", "tests/foo_test.cc",
         "auto x = _mm_crc32_u64(a, b);\n", {"raw-intrinsic"}),
        ("kernels.cc may use intrinsics", "src/index/kernels.cc",
         "#include <immintrin.h>\n__m256i v = _mm256_set1_epi32(1);\n",
         set()),
        ("simd.h may name intrinsics", "src/util/simd.h",
         "#include <immintrin.h>\n", set()),
        ("prefetch builtin is not an intrinsic", "src/index/flat_table.h",
         "__builtin_prefetch(slots_.data(), 0, 1);\n", set()),
        ("allowed intrinsic", "src/rdf/hash.cc",
         "// kgoa-lint: allow(raw-intrinsic) hardware CRC seed\n"
         "auto x = _mm_crc32_u64(a, b);\n", set()),
        ("raw IndexSet ref member", "src/join/foo.h",
         "  const IndexSet& indexes_;\n", {"raw-graph-retention"}),
        ("raw Graph pointer member", "src/core/foo.h",
         "  Graph* graph_ = nullptr;\n", {"raw-graph-retention"}),
        ("raw IndexSet field in an options struct", "src/ola/foo.h",
         "  const IndexSet* indexes = nullptr;\n", {"raw-graph-retention"}),
        ("qualified Graph ref member", "src/shard/foo.h",
         "  const kgoa::Graph& graph_;\n", {"raw-graph-retention"}),
        ("index layer may retain raw", "src/index/foo.h",
         "  const Graph& graph_;\n", set()),
        ("rdf layer may retain raw", "src/rdf/foo.h",
         "  Graph* graph_ = nullptr;\n", set()),
        ("tests may retain raw", "tests/foo_test.cc",
         "  const IndexSet& indexes_;\n", set()),
        ("snapshot member passes", "src/explore/foo.h",
         "  GraphSnapshot snapshot_;\n", set()),
        ("owning pointer passes", "src/core/foo.h",
         "  std::unique_ptr<IndexSet> indexes_;\n", set()),
        ("call-scoped ref local passes", "src/core/foo.cc",
         "  const IndexSet& indexes = snapshot.indexes();\n", set()),
        ("allowed query-scoped engine", "src/join/foo.h",
         "  // kgoa-lint: allow(raw-graph-retention) engine is query-"
         "scoped\n"
         "  const IndexSet& indexes_;\n", set()),
        ("existing rule still fires", "src/foo/bar.cc",
         "assert(x > 0);\n", {"bare-assert"}),
        ("raw thread still fires", "tests/foo_test.cc",
         "std::thread t([] {});\n", {"raw-thread"}),
    ]

    failures = []
    for name, rel, source, expected in cases:
        linter = Linter()
        linter.lint_text(rel, source)
        fired = set()
        for finding in linter.findings:
            m = re.search(r"\[([a-z-]+)\]", finding)
            if m:
                fired.add(m.group(1))
        if fired != expected:
            failures.append(
                f"  {name}: expected {sorted(expected) or '{}'}, "
                f"got {sorted(fired) or '{}'}")

    # Stale-allow bookkeeping: a used allow is not stale, an unused one is.
    linter = Linter()
    linter.lint_text(
        "src/foo/bar.cc",
        "// kgoa-lint: allow(raw-mutex) used below\n"
        "std::mutex m;\n"
        "int y;  // kgoa-lint: allow(naked-memory-order) nothing here\n")
    stale = linter.stale_allows()
    if linter.findings:
        failures.append(f"  stale-allows: unexpected findings "
                        f"{linter.findings}")
    if len(stale) != 1 or "naked-memory-order" not in stale[0]:
        failures.append(f"  stale-allows: expected exactly the unused "
                        f"naked-memory-order note, got {stale}")

    if failures:
        print("kgoa_lint self-test FAILED:")
        for f in failures:
            print(f)
        return 1
    print(f"kgoa_lint self-test OK ({len(cases) + 1} cases)")
    return 0


if __name__ == "__main__":
    if "--self-test" in sys.argv[1:]:
        sys.exit(self_test())
    sys.exit(Linter().run(report_stale="--stale-allows" in sys.argv[1:]))
