#!/usr/bin/env python3
"""Repo-specific lint rules for the KGOA codebase.

Rules (see DESIGN.md, "Correctness tooling"):

  bare-assert            No assert()/cassert outside src/util/contract.h —
                         invariants go through the leveled KGOA_CHECK /
                         KGOA_DCHECK contract macros so they print operands
                         and a backtrace, and stay active per build level.
  legacy-check-include   src/util/check.h is gone; nothing may include it.
  unordered-in-hot-path  No std::unordered_map / std::unordered_set inside
                         the hot-path dirs (src/index, src/join, src/core,
                         src/ola): node-based hashing is what FlatTable,
                         FlatAccumulator and ShardedFlatTable exist to
                         replace. Deliberate uses (reference baselines,
                         result containers) carry a
                         `kgoa-lint: allow(unordered-in-hot-path)` note.
  raw-rand               No rand()/srand()/std::mt19937/std::random_device
                         anywhere in src/: all randomness flows through the
                         seedable kgoa::Rng so runs stay reproducible.
  discarded-index-seek   A TrieIndex::SeekGE/Narrow/BlockEnd/Level0Range
                         result must not be discarded: these return the
                         new position/range, and dropping it means the
                         caller kept an unbounded cursor.
  seek-without-bounds-check
                         A TrieIterator::SeekGE (single-argument seek)
                         must have an AtEnd()/Key() bounds check within
                         +/-15 lines: the seek can exhaust the level, and
                         reading Key() at the end is undefined.
  raw-thread             No std::thread construction outside
                         src/ola/parallel.cc: every serve goes through the
                         persistent ServingCore worker pool, never a
                         thread-per-request. Deliberate uses (the parallel
                         index build, test/bench harnesses driving the
                         pool from multiple clients) carry a
                         `kgoa-lint: allow(raw-thread)` note.
  raw-level-array        No TrieIndex::RawTriplesForDerive() calls outside
                         src/index: the raw triple array only exists on the
                         raw storage tier (the block tier frees it), so any
                         caller bypassing the tier-agnostic accessors
                         (TripleAt/KeyAt/Narrow/SeekGE/BlockEnd) breaks as
                         soon as an IndexSet is built with
                         StorageTier::kBlock. Only IndexSet's chained radix
                         derivation may touch it.

Suppression: append `// kgoa-lint: allow(<rule>[, <rule>...])` on the
offending line or the line directly above, with a reason. Exits 1 when any
finding is reported, 0 on a clean tree.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

ALLOW_RE = re.compile(r"kgoa-lint:\s*allow\(([^)]*)\)")

# TrieIndex seeks take (range, level, value[, from]): >= 2 top-level commas.
INDEX_SEEK_STMT_RE = re.compile(
    r"^\s*[A-Za-z_][\w.\->()\[\]]*[.\->]+(SeekGE|Narrow|BlockEnd|Level0Range)\s*\("
)
ITER_SEEK_RE = re.compile(r"[.\->]SeekGE\s*\(")
BOUNDS_RE = re.compile(r"AtEnd\s*\(|Key\s*\(")


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments and string literals, keeping line
    structure so reported line numbers stay valid."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def top_level_commas(line: str, start: int) -> int:
    """Counts commas at paren depth 1 from the '(' at/after `start`;
    best-effort within one line."""
    depth = 0
    commas = 0
    for ch in line[start:]:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
            if depth <= 0:
                break
        elif ch == "," and depth == 1:
            commas += 1
    return commas


class Linter:
    def __init__(self) -> None:
        self.findings: list[str] = []

    def report(self, path: Path, lineno: int, rule: str, msg: str) -> None:
        rel = path.relative_to(REPO)
        self.findings.append(f"{rel}:{lineno}: [{rule}] {msg}")

    def allowed(self, rule: str, raw_lines: list[str], lineno: int) -> bool:
        for ln in (lineno, lineno - 1):
            if 1 <= ln <= len(raw_lines):
                m = ALLOW_RE.search(raw_lines[ln - 1])
                if m and rule in [r.strip() for r in m.group(1).split(",")]:
                    return True
        return False

    def lint_file(self, path: Path) -> None:
        raw = path.read_text(encoding="utf-8", errors="replace")
        raw_lines = raw.splitlines()
        code = strip_comments(raw)
        code_lines = code.splitlines()
        rel = path.relative_to(REPO).as_posix()
        in_src = rel.startswith("src/")
        in_hot = rel.startswith(
            ("src/index/", "src/join/", "src/core/", "src/ola/"))
        is_contract = rel == "src/util/contract.h"
        is_serving_core = rel == "src/ola/parallel.cc"
        is_index_impl = rel in (
            "src/index/trie_index.h",
            "src/index/trie_index.cc",
            "src/index/trie_iterator.cc",
        )

        def check(rule: str, lineno: int, msg: str) -> None:
            if not self.allowed(rule, raw_lines, lineno):
                self.report(path, lineno, rule, msg)

        for i, line in enumerate(code_lines, start=1):
            # legacy-check-include: everywhere, including comments is fine
            # to skip — only a real include can resurrect the header.
            if re.search(r'#\s*include\s*[<"].*util/check\.h', line):
                check("legacy-check-include", i,
                      "src/util/check.h was replaced by src/util/contract.h")

            if in_src and not is_contract:
                if re.search(r"(?<![\w.])assert\s*\(", line) and \
                        "static_assert" not in line:
                    check("bare-assert", i,
                          "use KGOA_CHECK/KGOA_DCHECK from "
                          "src/util/contract.h instead of assert()")
                if re.search(r'#\s*include\s*<(cassert|assert\.h)>', line):
                    check("bare-assert", i,
                          "do not include <cassert>; use src/util/contract.h")
                if re.search(r"(?<![\w.])s?rand\s*\(|std::mt19937|"
                             r"std::random_device|std::default_random_engine",
                             line):
                    check("raw-rand", i,
                          "use the seedable kgoa::Rng (src/util/rng.h); "
                          "unseeded/global RNGs break reproducibility")

            # raw-thread: applies to every root (src, tests, bench,
            # examples, fuzz) — the serving core owns the only pool.
            # `std::thread` followed by (, {, or an identifier is a
            # construction; `std::thread::` (e.g. hardware_concurrency)
            # and std::this_thread are fine.
            if not is_serving_core:
                if re.search(r"\bstd::thread\s*(?![:])", line):
                    check("raw-thread", i,
                          "std::thread construction is reserved for the "
                          "ServingCore pool (src/ola/parallel.cc); submit "
                          "jobs to the pool or annotate the deliberate "
                          "exception")

            # raw-level-array: everywhere outside src/index — the raw
            # triple array is a tier-private detail (absent on the block
            # tier); readers must stay behind the iterator contract.
            if not rel.startswith("src/index/"):
                if re.search(r"\bRawTriplesForDerive\s*\(", line):
                    check("raw-level-array", i,
                          "RawTriplesForDerive() bypasses the storage-tier "
                          "abstraction and is empty on the block tier; use "
                          "the tier-agnostic TripleAt/KeyAt/Narrow/SeekGE/"
                          "BlockEnd accessors")

            if in_hot:
                if re.search(r"\bunordered_(map|set)\b", line):
                    check("unordered-in-hot-path", i,
                          "node-based hash containers are banned in the "
                          "hot-path dirs (src/index, src/join, src/core, "
                          "src/ola); use FlatTable/FlatAccumulator/"
                          "ShardedFlatTable or annotate the deliberate "
                          "exception")

            if in_src and not is_index_impl:
                m = INDEX_SEEK_STMT_RE.match(line)
                if m and top_level_commas(line, m.end() - 1) >= 2:
                    check("discarded-index-seek", i,
                          f"result of TrieIndex::{m.group(1)} is discarded; "
                          "the returned position/range is the seek's only "
                          "output")
                sm = ITER_SEEK_RE.search(line)
                if sm and top_level_commas(line, sm.end() - 1) == 0:
                    lo = max(0, i - 16)
                    hi = min(len(code_lines), i + 15)
                    window = "\n".join(code_lines[lo:hi])
                    if not BOUNDS_RE.search(window):
                        check("seek-without-bounds-check", i,
                              "TrieIterator::SeekGE can exhaust the level; "
                              "check AtEnd()/Key() near the seek")

    def run(self) -> int:
        roots = ["src", "fuzz", "tests", "bench", "examples"]
        for root in roots:
            base = REPO / root
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix in (".h", ".cc"):
                    self.lint_file(path)
        for finding in self.findings:
            print(finding)
        n = len(self.findings)
        print(f"kgoa_lint: {n} finding{'s' if n != 1 else ''}")
        return 1 if self.findings else 0


if __name__ == "__main__":
    sys.exit(Linter().run())
