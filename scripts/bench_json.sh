#!/usr/bin/env bash
# Runs the machine-readable benches and captures their trace lines as
# versioned JSON artifacts:
#
#   BENCH_reach.json  `reach_trace` from micro_sample_time — the
#                     reach-probability cache ablation.
#   BENCH_serve.json  `serve_trace` from serve_concurrency — serving-core
#                     time-to-CI under concurrency and cancellation
#                     latency.
#   BENCH_shard.json  `shard_trace` from shard_scaling — scatter-gather
#                     time-to-CI at 1/2/4 shards.
#   BENCH_index.json  `index_trace` from index_memory — raw vs block
#                     storage-tier bytes and top-K time-to-displayed-chart.
#   BENCH_kernels.json `kernel_trace` from kernel_throughput — the SIMD
#                     kernel ablation: decode MB/s, in-block seeks/s and
#                     hash probes/s scalar vs vectorized, plus end-to-end
#                     time-to-CI scalar vs SIMD vs SIMD+batched walks.
#   BENCH_update.json `update_trace` from update_load — time-to-CI and
#                     MAE on a pinned snapshot while a writer applies
#                     0% / 1% / 10% write mixes, plus compaction cost.
#
# Usage: scripts/bench_json.sh [--quick] [reach_out.json] [serve_out.json]
#                              [shard_out.json] [index_out.json]
#                              [kernels_out.json] [update_out.json]
#
#   --quick    Smoke-sized runs (KGOA_BENCH_QUICK=1) — what tier1.sh runs.
#   outputs    Default to BENCH_reach.json / BENCH_serve.json /
#              BENCH_shard.json / BENCH_index.json / BENCH_kernels.json /
#              BENCH_update.json in the repo root (the tracked copies).
#
# The build directory defaults to ./build; override with KGOA_BENCH_BUILD.
# Each emitted JSON has the stable key set checked at the bottom of this
# script — downstream tooling (EXPERIMENTS.md tables, regression diffs)
# may rely on those keys existing.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
OUTS=()
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) OUTS+=("$arg") ;;
  esac
done
REACH_OUT="${OUTS[0]:-BENCH_reach.json}"
SERVE_OUT="${OUTS[1]:-BENCH_serve.json}"
SHARD_OUT="${OUTS[2]:-BENCH_shard.json}"
INDEX_OUT="${OUTS[3]:-BENCH_index.json}"
KERNELS_OUT="${OUTS[4]:-BENCH_kernels.json}"
UPDATE_OUT="${OUTS[5]:-BENCH_update.json}"

BUILD="${KGOA_BENCH_BUILD:-build}"
for bin in micro_sample_time serve_concurrency shard_scaling index_memory \
           kernel_throughput update_load; do
  if [[ ! -x "$BUILD/bench/$bin" ]]; then
    cmake --build "$BUILD" --target "$bin" -j "$(nproc)"
  fi
done

if [[ "$QUICK" == "1" ]]; then
  # Filter that matches nothing: skip the google-benchmark loops and run
  # only the hand-timed EmitReachTrace ablation.
  RAW=$(KGOA_BENCH_QUICK=1 "$BUILD/bench/micro_sample_time" \
        --benchmark_filter='^$' 2>/dev/null)
  SERVE_RAW=$(KGOA_BENCH_QUICK=1 "$BUILD/bench/serve_concurrency" \
              2>/dev/null)
  SHARD_RAW=$(KGOA_BENCH_QUICK=1 "$BUILD/bench/shard_scaling" 2>/dev/null)
  INDEX_RAW=$(KGOA_BENCH_QUICK=1 "$BUILD/bench/index_memory" 2>/dev/null)
  KERNELS_RAW=$(KGOA_BENCH_QUICK=1 "$BUILD/bench/kernel_throughput" \
                2>/dev/null)
  UPDATE_RAW=$(KGOA_BENCH_QUICK=1 "$BUILD/bench/update_load" 2>/dev/null)
else
  RAW=$("$BUILD/bench/micro_sample_time" --benchmark_filter='^BM_Reach' \
        2>/dev/null)
  SERVE_RAW=$("$BUILD/bench/serve_concurrency" 2>/dev/null)
  SHARD_RAW=$("$BUILD/bench/shard_scaling" 2>/dev/null)
  INDEX_RAW=$("$BUILD/bench/index_memory" 2>/dev/null)
  KERNELS_RAW=$("$BUILD/bench/kernel_throughput" 2>/dev/null)
  UPDATE_RAW=$("$BUILD/bench/update_load" 2>/dev/null)
fi

echo "$RAW" | grep '^reach_trace ' | sed 's/^reach_trace //' > "$REACH_OUT"
echo "$SERVE_RAW" | grep '^serve_trace ' | sed 's/^serve_trace //' \
    > "$SERVE_OUT"
echo "$SHARD_RAW" | grep '^shard_trace ' | sed 's/^shard_trace //' \
    > "$SHARD_OUT"
echo "$INDEX_RAW" | grep '^index_trace ' | sed 's/^index_trace //' \
    > "$INDEX_OUT"
echo "$KERNELS_RAW" | grep '^kernel_trace ' | sed 's/^kernel_trace //' \
    > "$KERNELS_OUT"
echo "$UPDATE_RAW" | grep '^update_trace ' | sed 's/^update_trace //' \
    > "$UPDATE_OUT"

python3 - "$REACH_OUT" "$SERVE_OUT" "$SHARD_OUT" "$INDEX_OUT" \
    "$KERNELS_OUT" "$UPDATE_OUT" <<'EOF'
import json
import sys

def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)

def require(path, trace, counters, gauges):
    missing = sorted(counters - trace.get("counters", {}).keys())
    missing += sorted(gauges - trace.get("gauges", {}).keys())
    if missing:
        sys.exit(f"bench_json.sh: {path} is missing stable keys: {missing}")

reach_path, serve_path, shard_path, index_path, kernels_path, update_path = (
    sys.argv[1], sys.argv[2], sys.argv[3], sys.argv[4], sys.argv[5],
    sys.argv[6])

reach = load(reach_path)
require(reach_path, reach, {
    "reach.pairs", "reach.threads", "reach.hits", "reach.misses",
    "reach.contention", "reach.entries", "reach.memory_bytes",
}, {
    "reach.cold_ns", "reach.warm_shared_ns", "reach.warm_refmap_ns",
    "reach.warm_shared_mt_ns", "reach.seed_path_ns", "reach.shared_path_ns",
    "reach.speedup_shared_vs_seed", "reach.speedup_warm_vs_seed",
    "reach.speedup_warm_vs_refmap",
})
print(f"bench_json.sh: wrote {reach_path} "
      f"(warm_shared={reach['gauges']['reach.warm_shared_ns']:.1f} ns/op, "
      f"speedup_warm_vs_seed="
      f"{reach['gauges']['reach.speedup_warm_vs_seed']:.2f}x)")

serve = load(serve_path)
require(serve_path, serve, {
    "serve.threads", "serve.jobs_submitted", "serve.jobs_completed",
    "serve.jobs_cancelled", "serve.quanta", "serve.preemptions",
    "serve.walks", "serve.live_jobs", "serve.max_live_jobs",
}, {
    "serve.ci_target", "serve.solo_seconds_to_ci", "serve.solo_walks_to_ci",
    "serve.concurrent_jobs", "serve.concurrent_seconds_to_ci",
    "serve.concurrent_slowdown", "serve.cancel_latency_mean_seconds",
    "serve.cancel_latency_max_seconds", "serve.last_cancel_latency_seconds",
})
print(f"bench_json.sh: wrote {serve_path} "
      f"(solo={serve['gauges']['serve.solo_seconds_to_ci']*1e3:.0f} ms, "
      f"4-way={serve['gauges']['serve.concurrent_seconds_to_ci']*1e3:.0f} ms,"
      f" cancel="
      f"{serve['gauges']['serve.cancel_latency_mean_seconds']*1e3:.2f} ms)")

shard = load(shard_path)
require(shard_path, shard, {
    "shard.count", "shard.jobs_submitted", "shard.shard_jobs_submitted",
    "shard.threads", "shard.core_jobs_submitted",
    "shard.core_jobs_completed", "shard.core_jobs_cancelled",
    "shard.quanta", "shard.walks", "shard.triples_min", "shard.triples_max",
    "shard.triples_total",
}, {
    "shard.ci_target", "shard.balance", "shard.s1_seconds_to_ci",
    "shard.s1_walks_to_ci", "shard.s2_seconds_to_ci", "shard.s2_walks_to_ci",
    "shard.s2_speedup", "shard.s4_seconds_to_ci", "shard.s4_walks_to_ci",
    "shard.s4_speedup",
})
print(f"bench_json.sh: wrote {shard_path} "
      f"(1 shard={shard['gauges']['shard.s1_seconds_to_ci']*1e3:.0f} ms, "
      f"4 shards={shard['gauges']['shard.s4_seconds_to_ci']*1e3:.0f} ms, "
      f"s4 speedup={shard['gauges']['shard.s4_speedup']:.2f}x)")

index = load(index_path)
require(index_path, index, {
    "index.dbpedia-like.raw_bytes", "index.dbpedia-like.block_bytes",
    "index.lgd-like.raw_bytes", "index.lgd-like.block_bytes",
    "index.topk_pruned_walks",
}, {
    "index.ci_target",
    "index.dbpedia-like.memory_ratio", "index.dbpedia-like.compress_ms",
    "index.lgd-like.memory_ratio", "index.lgd-like.compress_ms",
    "index.memory_ratio_min", "index.full_seconds_to_converged",
    "index.topk_seconds_to_displayed", "index.topk_speedup",
})
print(f"bench_json.sh: wrote {index_path} "
      f"(block tier "
      f"{index['gauges']['index.memory_ratio_min']:.2f}x smaller, "
      f"top-K displayed chart "
      f"{index['gauges']['index.topk_speedup']:.2f}x faster than full)")

# Host-portable key set: scalar-vs-best rather than per-level keys, so the
# same keys validate on machines without AVX2 (where "simd" may be SSE4.2
# or scalar and the speedups sit near 1.0).
kernels = load(kernels_path)
require(kernels_path, kernels, {
    "kernels.simd_level", "kernels.probe_prefetch_depth",
    "kernels.default_batch_walks",
}, {
    "kernels.decode_mbps.scalar", "kernels.decode_mbps.simd",
    "kernels.decode_speedup", "kernels.seeks_per_sec.scalar",
    "kernels.seeks_per_sec.simd", "kernels.seek_speedup",
    "kernels.probes_per_sec.serial", "kernels.probes_per_sec.batched",
    "kernels.probe_speedup", "kernels.e2e_seconds.scalar",
    "kernels.e2e_seconds.simd", "kernels.e2e_seconds.simd_batched",
    "kernels.e2e_walks_per_sec.simd_batched", "kernels.e2e_speedup",
})
print(f"bench_json.sh: wrote {kernels_path} "
      f"(decode {kernels['gauges']['kernels.decode_speedup']:.2f}x, "
      f"in-block seek {kernels['gauges']['kernels.seek_speedup']:.2f}x, "
      f"end-to-end {kernels['gauges']['kernels.e2e_speedup']:.2f}x "
      f"time-to-CI)")

update = load(update_path)
update_gauges = {"update.ci_target"}
for m in ("w0", "w1", "w10"):
    update_gauges |= {
        f"update.{m}_seconds_to_ci", f"update.{m}_walks_to_ci",
        f"update.{m}_mae", f"update.{m}_rel_mae",
        f"update.{m}_write_triples", f"update.{m}_compact_seconds",
    }
update_gauges |= {"update.w1_slowdown", "update.w10_slowdown"}
require(update_path, update, {
    "update.threads", "epoch.current", "epoch.base_triples",
    "epoch.live_triples", "epoch.overlay_adds", "epoch.overlay_dels",
    "epoch.batches_applied", "epoch.compactions", "epoch.snapshots_pinned",
}, update_gauges)
print(f"bench_json.sh: wrote {update_path} "
      f"(read-only={update['gauges']['update.w0_seconds_to_ci']*1e3:.0f} ms,"
      f" 10% writes={update['gauges']['update.w10_seconds_to_ci']*1e3:.0f} ms"
      f" ({update['gauges']['update.w10_slowdown']:.2f}x), compact="
      f"{update['gauges']['update.w10_compact_seconds']*1e3:.0f} ms)")
EOF
