#!/usr/bin/env bash
# Runs the reach-probability cache benches and captures their
# machine-readable `reach_trace` line as BENCH_reach.json.
#
# Usage: scripts/bench_json.sh [--quick] [out.json]
#
#   --quick    Smoke-sized run (KGOA_BENCH_QUICK=1: 1000 pairs, 4 threads)
#              and only the hand-timed ablation — what tier1.sh runs.
#   out.json   Output path; defaults to BENCH_reach.json in the repo root.
#
# The build directory defaults to ./build; override with KGOA_BENCH_BUILD.
# The emitted JSON has the stable key set checked at the bottom of this
# script — downstream tooling (EXPERIMENTS.md tables, regression diffs)
# may rely on those keys existing.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
OUT="BENCH_reach.json"
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) OUT="$arg" ;;
  esac
done

BUILD="${KGOA_BENCH_BUILD:-build}"
BIN="$BUILD/bench/micro_sample_time"
if [[ ! -x "$BIN" ]]; then
  cmake --build "$BUILD" --target micro_sample_time -j "$(nproc)"
fi

if [[ "$QUICK" == "1" ]]; then
  # Filter that matches nothing: skip the google-benchmark loops and run
  # only the hand-timed EmitReachTrace ablation.
  RAW=$(KGOA_BENCH_QUICK=1 "$BIN" --benchmark_filter='^$' 2>/dev/null)
else
  RAW=$("$BIN" --benchmark_filter='^BM_Reach' 2>/dev/null)
fi

echo "$RAW" | grep '^reach_trace ' | sed 's/^reach_trace //' > "$OUT"

python3 - "$OUT" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path, encoding="utf-8") as f:
    trace = json.load(f)

COUNTERS = {
    "reach.pairs", "reach.threads", "reach.hits", "reach.misses",
    "reach.contention", "reach.entries", "reach.memory_bytes",
}
GAUGES = {
    "reach.cold_ns", "reach.warm_shared_ns", "reach.warm_refmap_ns",
    "reach.warm_shared_mt_ns", "reach.seed_path_ns", "reach.shared_path_ns",
    "reach.speedup_shared_vs_seed", "reach.speedup_warm_vs_seed",
    "reach.speedup_warm_vs_refmap",
}
missing = sorted(COUNTERS - trace.get("counters", {}).keys())
missing += sorted(GAUGES - trace.get("gauges", {}).keys())
if missing:
    sys.exit(f"bench_json.sh: {path} is missing stable keys: {missing}")
print(f"bench_json.sh: wrote {path} "
      f"(warm_shared={trace['gauges']['reach.warm_shared_ns']:.1f} ns/op, "
      f"speedup_warm_vs_seed="
      f"{trace['gauges']['reach.speedup_warm_vs_seed']:.2f}x)")
EOF
