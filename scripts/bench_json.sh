#!/usr/bin/env bash
# Runs the machine-readable benches and captures their trace lines as
# versioned JSON artifacts:
#
#   BENCH_reach.json  `reach_trace` from micro_sample_time — the
#                     reach-probability cache ablation.
#   BENCH_serve.json  `serve_trace` from serve_concurrency — serving-core
#                     time-to-CI under concurrency and cancellation
#                     latency.
#
# Usage: scripts/bench_json.sh [--quick] [reach_out.json] [serve_out.json]
#
#   --quick    Smoke-sized runs (KGOA_BENCH_QUICK=1) — what tier1.sh runs.
#   outputs    Default to BENCH_reach.json / BENCH_serve.json in the repo
#              root (the tracked copies).
#
# The build directory defaults to ./build; override with KGOA_BENCH_BUILD.
# Each emitted JSON has the stable key set checked at the bottom of this
# script — downstream tooling (EXPERIMENTS.md tables, regression diffs)
# may rely on those keys existing.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
OUTS=()
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) OUTS+=("$arg") ;;
  esac
done
REACH_OUT="${OUTS[0]:-BENCH_reach.json}"
SERVE_OUT="${OUTS[1]:-BENCH_serve.json}"

BUILD="${KGOA_BENCH_BUILD:-build}"
for bin in micro_sample_time serve_concurrency; do
  if [[ ! -x "$BUILD/bench/$bin" ]]; then
    cmake --build "$BUILD" --target "$bin" -j "$(nproc)"
  fi
done

if [[ "$QUICK" == "1" ]]; then
  # Filter that matches nothing: skip the google-benchmark loops and run
  # only the hand-timed EmitReachTrace ablation.
  RAW=$(KGOA_BENCH_QUICK=1 "$BUILD/bench/micro_sample_time" \
        --benchmark_filter='^$' 2>/dev/null)
  SERVE_RAW=$(KGOA_BENCH_QUICK=1 "$BUILD/bench/serve_concurrency" \
              2>/dev/null)
else
  RAW=$("$BUILD/bench/micro_sample_time" --benchmark_filter='^BM_Reach' \
        2>/dev/null)
  SERVE_RAW=$("$BUILD/bench/serve_concurrency" 2>/dev/null)
fi

echo "$RAW" | grep '^reach_trace ' | sed 's/^reach_trace //' > "$REACH_OUT"
echo "$SERVE_RAW" | grep '^serve_trace ' | sed 's/^serve_trace //' \
    > "$SERVE_OUT"

python3 - "$REACH_OUT" "$SERVE_OUT" <<'EOF'
import json
import sys

def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)

def require(path, trace, counters, gauges):
    missing = sorted(counters - trace.get("counters", {}).keys())
    missing += sorted(gauges - trace.get("gauges", {}).keys())
    if missing:
        sys.exit(f"bench_json.sh: {path} is missing stable keys: {missing}")

reach_path, serve_path = sys.argv[1], sys.argv[2]

reach = load(reach_path)
require(reach_path, reach, {
    "reach.pairs", "reach.threads", "reach.hits", "reach.misses",
    "reach.contention", "reach.entries", "reach.memory_bytes",
}, {
    "reach.cold_ns", "reach.warm_shared_ns", "reach.warm_refmap_ns",
    "reach.warm_shared_mt_ns", "reach.seed_path_ns", "reach.shared_path_ns",
    "reach.speedup_shared_vs_seed", "reach.speedup_warm_vs_seed",
    "reach.speedup_warm_vs_refmap",
})
print(f"bench_json.sh: wrote {reach_path} "
      f"(warm_shared={reach['gauges']['reach.warm_shared_ns']:.1f} ns/op, "
      f"speedup_warm_vs_seed="
      f"{reach['gauges']['reach.speedup_warm_vs_seed']:.2f}x)")

serve = load(serve_path)
require(serve_path, serve, {
    "serve.threads", "serve.jobs_submitted", "serve.jobs_completed",
    "serve.jobs_cancelled", "serve.quanta", "serve.preemptions",
    "serve.walks", "serve.live_jobs", "serve.max_live_jobs",
}, {
    "serve.ci_target", "serve.solo_seconds_to_ci", "serve.solo_walks_to_ci",
    "serve.concurrent_jobs", "serve.concurrent_seconds_to_ci",
    "serve.concurrent_slowdown", "serve.cancel_latency_mean_seconds",
    "serve.cancel_latency_max_seconds", "serve.last_cancel_latency_seconds",
})
print(f"bench_json.sh: wrote {serve_path} "
      f"(solo={serve['gauges']['serve.solo_seconds_to_ci']*1e3:.0f} ms, "
      f"4-way={serve['gauges']['serve.concurrent_seconds_to_ci']*1e3:.0f} ms,"
      f" cancel="
      f"{serve['gauges']['serve.cancel_latency_mean_seconds']*1e3:.2f} ms)")
EOF
