#!/usr/bin/env bash
# Static-analysis driver for the KGOA tree. Four stages, each fatal:
#
#   1. -Werror build      the whole tree compiles warning-clean, and the
#                         configure step exports compile_commands.json
#   2. kgoa_lint.py       repo-specific rules (contract-macro usage, hot
#                         path containers, RNG discipline, seek hygiene,
#                         raw-mutex/naked-memory-order/cv-wait-predicate
#                         concurrency rules) plus stale-suppression
#                         detection (--stale-allows)
#   3. clang-tidy         curated .clang-tidy check set over every
#                         translation unit; skipped with a notice when
#                         clang-tidy is not installed
#   4. clang TSA          clang build of the core library with
#                         -Wthread-safety -Wthread-safety-beta promoted to
#                         errors (-DKGOA_TSA=ON), including the
#                         negative-compile harness that proves the
#                         analysis actually fires
#                         (tests/tsa_compile_test.cmake); skipped with a
#                         notice when clang is not installed
#
# Each stage prints its wall-clock seconds; the run ends with one
# machine-readable summary line:
#
#   lint: stages=4 findings=<failed stages> seconds=<total>
#
# Usage: scripts/lint.sh [build-dir]   (default: build-lint)
# Exits non-zero on any finding. scripts/tier1.sh invokes this.
set -u -o pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-lint}"
JOBS="$(nproc 2>/dev/null || echo 2)"
status=0
failures=0
lint_start="${SECONDS}"
stage_start=0

stage_begin() {
  echo "== lint stage $1: $2 =="
  stage_start="${SECONDS}"
}

stage_end() {  # <name> <exit-code>
  local elapsed=$(( SECONDS - stage_start ))
  echo "lint: stage $1 took ${elapsed}s"
  if [ "$2" -ne 0 ]; then
    failures=$(( failures + 1 ))
    status=1
  fi
}

stage_begin 1 "-Werror build (${BUILD_DIR})"
stage1=0
if ! cmake -B "${BUILD_DIR}" -S . \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON -DKGOA_WERROR=ON \
      >"${BUILD_DIR}.configure.log" 2>&1; then
  cat "${BUILD_DIR}.configure.log"
  echo "lint.sh: configure failed" >&2
  exit 1
fi
if ! cmake --build "${BUILD_DIR}" -j "${JOBS}"; then
  echo "lint.sh: -Werror build failed" >&2
  stage1=1
fi
stage_end 1 "${stage1}"

stage_begin 2 "kgoa_lint.py (with --stale-allows)"
stage2=0
if ! python3 scripts/kgoa_lint.py --stale-allows; then
  stage2=1
fi
stage_end 2 "${stage2}"

stage_begin 3 "clang-tidy"
stage3=0
if command -v clang-tidy >/dev/null 2>&1; then
  # run-clang-tidy parallelises over compile_commands.json when present.
  if command -v run-clang-tidy >/dev/null 2>&1; then
    if ! run-clang-tidy -p "${BUILD_DIR}" -quiet -j "${JOBS}" \
          "src/.*" "tests/.*" "bench/.*" "fuzz/.*"; then
      stage3=1
    fi
  else
    mapfile -t tus < <(git ls-files 'src/**/*.cc' 'tests/*.cc' \
                                     'bench/*.cc' 'fuzz/*.cc')
    if ! clang-tidy -p "${BUILD_DIR}" -quiet "${tus[@]}"; then
      stage3=1
    fi
  fi
else
  echo "lint.sh: clang-tidy not installed; skipping stage 3" >&2
fi
stage_end 3 "${stage3}"

stage_begin 4 "clang thread-safety analysis"
stage4=0
if command -v clang++ >/dev/null 2>&1; then
  TSA_DIR="${BUILD_DIR}-tsa"
  # Configure runs the negative-compile harness
  # (tests/tsa_compile_test.cmake): a KGOA_GUARDED_BY violation and an
  # unannotated REQUIRES call must FAIL to compile, or the configure
  # aborts — so a silently-rotted analysis can never pass this stage.
  if ! cmake -B "${TSA_DIR}" -S . \
        -DCMAKE_CXX_COMPILER=clang++ -DKGOA_TSA=ON -DKGOA_WERROR=ON \
        >"${TSA_DIR}.configure.log" 2>&1; then
    cat "${TSA_DIR}.configure.log"
    echo "lint.sh: TSA configure (or negative-compile harness) failed" >&2
    stage4=1
  elif ! cmake --build "${TSA_DIR}" -j "${JOBS}" --target kgoa; then
    echo "lint.sh: clang -Wthread-safety build failed" >&2
    stage4=1
  fi
else
  echo "lint.sh: clang++ not installed; skipping stage 4 (TSA)" >&2
fi
stage_end 4 "${stage4}"

total=$(( SECONDS - lint_start ))
if [ "${status}" -ne 0 ]; then
  echo "lint.sh: FINDINGS (see above)" >&2
else
  echo "lint.sh: clean"
fi
echo "lint: stages=4 findings=${failures} seconds=${total}"
exit "${status}"
