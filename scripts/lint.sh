#!/usr/bin/env bash
# Static-analysis driver for the KGOA tree. Three stages, each fatal:
#
#   1. -Werror build      the whole tree compiles warning-clean, and the
#                         configure step exports compile_commands.json
#   2. kgoa_lint.py       repo-specific rules (contract-macro usage, hot
#                         path containers, RNG discipline, seek hygiene)
#   3. clang-tidy         curated .clang-tidy check set over every
#                         translation unit; skipped with a notice when
#                         clang-tidy is not installed
#
# Usage: scripts/lint.sh [build-dir]   (default: build-lint)
# Exits non-zero on any finding. scripts/tier1.sh invokes this.
set -u -o pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-lint}"
JOBS="$(nproc 2>/dev/null || echo 2)"
status=0

echo "== lint stage 1: -Werror build (${BUILD_DIR}) =="
if ! cmake -B "${BUILD_DIR}" -S . \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON -DKGOA_WERROR=ON \
      >"${BUILD_DIR}.configure.log" 2>&1; then
  cat "${BUILD_DIR}.configure.log"
  echo "lint.sh: configure failed" >&2
  exit 1
fi
if ! cmake --build "${BUILD_DIR}" -j "${JOBS}"; then
  echo "lint.sh: -Werror build failed" >&2
  status=1
fi

echo "== lint stage 2: kgoa_lint.py =="
if ! python3 scripts/kgoa_lint.py; then
  status=1
fi

echo "== lint stage 3: clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  # run-clang-tidy parallelises over compile_commands.json when present.
  if command -v run-clang-tidy >/dev/null 2>&1; then
    if ! run-clang-tidy -p "${BUILD_DIR}" -quiet -j "${JOBS}" \
          "src/.*" "tests/.*" "bench/.*" "fuzz/.*"; then
      status=1
    fi
  else
    mapfile -t tus < <(git ls-files 'src/**/*.cc' 'tests/*.cc' \
                                     'bench/*.cc' 'fuzz/*.cc')
    if ! clang-tidy -p "${BUILD_DIR}" -quiet "${tus[@]}"; then
      status=1
    fi
  fi
else
  echo "lint.sh: clang-tidy not installed; skipping stage 3" >&2
fi

if [ "${status}" -ne 0 ]; then
  echo "lint.sh: FINDINGS (see above)" >&2
else
  echo "lint.sh: clean"
fi
exit "${status}"
